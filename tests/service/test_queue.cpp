#include "service/queue.hpp"

#include <gtest/gtest.h>

#include <map>

namespace oagrid::service {
namespace {

TEST(QueuePolicy, ParsesAndPrints) {
  EXPECT_EQ(queue_policy_from("fifo"), QueuePolicy::kFifo);
  EXPECT_EQ(queue_policy_from("fair"), QueuePolicy::kWeightedFairShare);
  EXPECT_EQ(queue_policy_from("srmf"), QueuePolicy::kShortestRemaining);
  EXPECT_STREQ(to_string(QueuePolicy::kFifo), "fifo");
  EXPECT_STREQ(to_string(QueuePolicy::kWeightedFairShare), "fair");
  EXPECT_STREQ(to_string(QueuePolicy::kShortestRemaining), "srmf");
  EXPECT_THROW((void)queue_policy_from("lifo"), std::invalid_argument);
}

TEST(CampaignQueue, BoundedCapacityRejects) {
  CampaignQueue queue(QueuePolicy::kFifo, 2);
  EXPECT_TRUE(queue.try_enqueue(1));
  EXPECT_TRUE(queue.try_enqueue(2));
  EXPECT_FALSE(queue.try_enqueue(3));  // admission control back-pressure
  EXPECT_EQ(queue.depth(), 2u);
  queue.remove(1);
  EXPECT_TRUE(queue.try_enqueue(3));
}

TEST(CampaignQueue, RemoveUnknownThrows) {
  CampaignQueue queue(QueuePolicy::kFifo, 4);
  ASSERT_TRUE(queue.try_enqueue(1));
  EXPECT_THROW(queue.remove(2), std::invalid_argument);
}

TEST(CampaignQueue, FifoIgnoresPriorities) {
  CampaignQueue queue(QueuePolicy::kFifo, 8);
  for (CampaignId id : {5u, 3u, 9u, 1u}) ASSERT_TRUE(queue.try_enqueue(id));
  const auto order = queue.admission_order(
      [](CampaignId id) { return -static_cast<double>(id); });
  EXPECT_EQ(order, (std::vector<CampaignId>{5, 3, 9, 1}));
}

TEST(CampaignQueue, PolicySortsAscendingWithStableTies) {
  CampaignQueue queue(QueuePolicy::kWeightedFairShare, 8);
  for (CampaignId id : {1u, 2u, 3u, 4u}) ASSERT_TRUE(queue.try_enqueue(id));
  const std::map<CampaignId, double> priority{
      {1, 2.0}, {2, 0.5}, {3, 2.0}, {4, 0.5}};
  const auto order =
      queue.admission_order([&](CampaignId id) { return priority.at(id); });
  // 2 and 4 share the lowest priority: submission order breaks the tie.
  EXPECT_EQ(order, (std::vector<CampaignId>{2, 4, 1, 3}));
}

TEST(CampaignQueue, FrontTracksTheMaintainedIndex) {
  CampaignQueue queue(QueuePolicy::kWeightedFairShare, 8);
  ASSERT_TRUE(queue.try_enqueue(1, 2.0));
  ASSERT_TRUE(queue.try_enqueue(2, 0.5));
  ASSERT_TRUE(queue.try_enqueue(3, 1.0));
  EXPECT_EQ(queue.front(), 2u);
  queue.remove(2);
  EXPECT_EQ(queue.front(), 3u);
  queue.remove(3);
  EXPECT_EQ(queue.front(), 1u);
  queue.remove(1);
  EXPECT_TRUE(queue.empty());
  EXPECT_THROW((void)queue.front(), std::invalid_argument);
}

TEST(CampaignQueue, UpdatePriorityRekeysInPlace) {
  CampaignQueue queue(QueuePolicy::kWeightedFairShare, 8);
  ASSERT_TRUE(queue.try_enqueue(1, 1.0));
  ASSERT_TRUE(queue.try_enqueue(2, 2.0));
  EXPECT_EQ(queue.front(), 1u);
  queue.update_priority(1, 3.0);
  EXPECT_EQ(queue.front(), 2u);
  queue.update_priority(2, 3.0);  // now tied: submission order decides
  EXPECT_EQ(queue.front(), 1u);
  EXPECT_THROW(queue.update_priority(7, 0.0), std::invalid_argument);
}

TEST(CampaignQueue, FrontAgreesWithAdmissionOrderUnderChurn) {
  CampaignQueue queue(QueuePolicy::kWeightedFairShare, 32);
  std::map<CampaignId, double> priority;
  const auto lookup = [&](CampaignId id) { return priority.at(id); };
  // Deterministic churn: enqueue, re-key and remove in a scripted pattern,
  // checking the O(log n) head against the full stable sort every step.
  for (CampaignId id = 1; id <= 20; ++id) {
    priority[id] = static_cast<double>((id * 7) % 5);
    ASSERT_TRUE(queue.try_enqueue(id, priority[id]));
    EXPECT_EQ(queue.front(), queue.admission_order(lookup).front());
  }
  for (CampaignId id = 1; id <= 20; ++id) {
    if (id % 3 == 0) {
      priority[id] = static_cast<double>((id * 11) % 7);
      queue.update_priority(id, priority[id]);
    }
    if (id % 4 == 0) {
      queue.remove(id);
      priority.erase(id);
    }
    EXPECT_EQ(queue.front(), queue.admission_order(lookup).front());
  }
}

TEST(CampaignQueue, FifoFrontIsSubmissionOrderWhateverThePriorities) {
  CampaignQueue queue(QueuePolicy::kFifo, 8);
  ASSERT_TRUE(queue.try_enqueue(5, 9.0));
  ASSERT_TRUE(queue.try_enqueue(3, 0.0));
  queue.update_priority(5, -1.0);  // no-op under fifo
  EXPECT_EQ(queue.front(), 5u);
}

TEST(CampaignQueue, FullReportsCapacity) {
  CampaignQueue queue(QueuePolicy::kFifo, 2);
  EXPECT_FALSE(queue.full());
  ASSERT_TRUE(queue.try_enqueue(1));
  ASSERT_TRUE(queue.try_enqueue(2));
  EXPECT_TRUE(queue.full());
  queue.remove(1);
  EXPECT_FALSE(queue.full());
}

}  // namespace
}  // namespace oagrid::service
