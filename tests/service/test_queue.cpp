#include "service/queue.hpp"

#include <gtest/gtest.h>

#include <map>

namespace oagrid::service {
namespace {

TEST(QueuePolicy, ParsesAndPrints) {
  EXPECT_EQ(queue_policy_from("fifo"), QueuePolicy::kFifo);
  EXPECT_EQ(queue_policy_from("fair"), QueuePolicy::kWeightedFairShare);
  EXPECT_EQ(queue_policy_from("srmf"), QueuePolicy::kShortestRemaining);
  EXPECT_STREQ(to_string(QueuePolicy::kFifo), "fifo");
  EXPECT_STREQ(to_string(QueuePolicy::kWeightedFairShare), "fair");
  EXPECT_STREQ(to_string(QueuePolicy::kShortestRemaining), "srmf");
  EXPECT_THROW((void)queue_policy_from("lifo"), std::invalid_argument);
}

TEST(CampaignQueue, BoundedCapacityRejects) {
  CampaignQueue queue(QueuePolicy::kFifo, 2);
  EXPECT_TRUE(queue.try_enqueue(1));
  EXPECT_TRUE(queue.try_enqueue(2));
  EXPECT_FALSE(queue.try_enqueue(3));  // admission control back-pressure
  EXPECT_EQ(queue.depth(), 2u);
  queue.remove(1);
  EXPECT_TRUE(queue.try_enqueue(3));
}

TEST(CampaignQueue, RemoveUnknownThrows) {
  CampaignQueue queue(QueuePolicy::kFifo, 4);
  ASSERT_TRUE(queue.try_enqueue(1));
  EXPECT_THROW(queue.remove(2), std::invalid_argument);
}

TEST(CampaignQueue, FifoIgnoresPriorities) {
  CampaignQueue queue(QueuePolicy::kFifo, 8);
  for (CampaignId id : {5u, 3u, 9u, 1u}) ASSERT_TRUE(queue.try_enqueue(id));
  const auto order = queue.admission_order(
      [](CampaignId id) { return -static_cast<double>(id); });
  EXPECT_EQ(order, (std::vector<CampaignId>{5, 3, 9, 1}));
}

TEST(CampaignQueue, PolicySortsAscendingWithStableTies) {
  CampaignQueue queue(QueuePolicy::kWeightedFairShare, 8);
  for (CampaignId id : {1u, 2u, 3u, 4u}) ASSERT_TRUE(queue.try_enqueue(id));
  const std::map<CampaignId, double> priority{
      {1, 2.0}, {2, 0.5}, {3, 2.0}, {4, 0.5}};
  const auto order =
      queue.admission_order([&](CampaignId id) { return priority.at(id); });
  // 2 and 4 share the lowest priority: submission order breaks the tie.
  EXPECT_EQ(order, (std::vector<CampaignId>{2, 4, 1, 3}));
}

}  // namespace
}  // namespace oagrid::service
