#include "service/service.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "obs/obs.hpp"
#include "platform/profiles.hpp"

namespace oagrid::service {
namespace {

platform::Grid small_grid(int clusters, ProcCount resources) {
  std::vector<platform::Cluster> set;
  for (int i = 0; i < clusters; ++i)
    set.push_back(platform::make_builtin_cluster(i, resources));
  return platform::Grid(std::move(set));
}

std::unique_ptr<CampaignService> make_service(int clusters, ProcCount resources,
                                              ServiceOptions options = {}) {
  return std::make_unique<CampaignService>(small_grid(clusters, resources),
                                           std::move(options));
}

CampaignSpec spec(const std::string& owner, Count scenarios, Count months,
                  double weight = 1.0) {
  CampaignSpec s;
  s.owner = owner;
  s.weight = weight;
  s.scenarios = scenarios;
  s.months = months;
  return s;
}

TEST(CampaignService, SingleCampaignRunsToCompletion) {
  auto service = make_service(1, 24);
  const CampaignId id = service->submit(spec("alice", 3, 4));
  EXPECT_TRUE(service->run());

  const CampaignState& state = service->campaign(id);
  EXPECT_EQ(state.status, CampaignStatus::kCompleted);
  EXPECT_EQ(state.months_done, 12);
  for (const MonthIndex m : state.frontier) EXPECT_EQ(m, 4);
  EXPECT_GT(state.makespan(), 0.0);
  EXPECT_TRUE(service->active_leases().empty());
  EXPECT_EQ(service->queue_depth(), 0u);
  // Every scenario stayed on its admission-time cluster (trivially here).
  for (const ClusterId c : state.assignment) EXPECT_EQ(c, 0);
}

TEST(CampaignService, SubmissionOrderAndLifecycleAreEnforced) {
  auto service = make_service(1, 24);
  (void)service->submit(spec("alice", 1, 1), 100.0);
  EXPECT_THROW((void)service->submit(spec("bob", 1, 1), 50.0),
               std::invalid_argument);  // arrivals must be non-decreasing
  EXPECT_TRUE(service->run());
  EXPECT_THROW((void)service->submit(spec("bob", 1, 1), 200.0),
               std::invalid_argument);  // no submissions after run()
}

TEST(CampaignService, QueueFullRejectsAndMaxActiveSerializes) {
  ServiceOptions options;
  options.policy = QueuePolicy::kFifo;
  options.queue_capacity = 1;
  options.max_active = 1;
  auto service = make_service(1, 24, options);
  const CampaignId c1 = service->submit(spec("alice", 2, 2), 0.0);
  const CampaignId c2 = service->submit(spec("bob", 2, 2), 0.0);
  const CampaignId c3 = service->submit(spec("carol", 2, 2), 0.0);
  EXPECT_TRUE(service->run());

  EXPECT_EQ(service->campaign(c1).status, CampaignStatus::kCompleted);
  EXPECT_EQ(service->campaign(c2).status, CampaignStatus::kCompleted);
  // c1 was admitted instantly (leaving the queue), c2 filled the one queue
  // slot, c3 hit admission control.
  EXPECT_EQ(service->campaign(c3).status, CampaignStatus::kRejected);
  // One tenant at a time: c2 waited for c1 to finish.
  EXPECT_GE(service->campaign(c2).admit_time,
            service->campaign(c1).finish_time);
  EXPECT_GT(service->campaign(c2).admit_time, 0.0);
}

TEST(CampaignService, ConcurrentCampaignsShareTheCluster) {
  auto service = make_service(1, 30);
  const CampaignId c1 = service->submit(spec("alice", 3, 4), 0.0);
  const CampaignId c2 = service->submit(spec("bob", 3, 4), 0.0);
  EXPECT_TRUE(service->run());

  // Both admitted at t = 0: the second did not wait for the first.
  EXPECT_EQ(service->campaign(c1).admit_time, 0.0);
  EXPECT_EQ(service->campaign(c2).admit_time, 0.0);
  EXPECT_EQ(service->campaign(c1).status, CampaignStatus::kCompleted);
  EXPECT_EQ(service->campaign(c2).status, CampaignStatus::kCompleted);
  // Elastic leases were re-carved at least when c2 arrived and when each
  // campaign released its allotment.
  EXPECT_GE(service->lease_changes(), 4u);
}

TEST(CampaignService, RunsAreDeterministic) {
  std::vector<Seconds> finish_a, finish_b;
  for (std::vector<Seconds>* finishes : {&finish_a, &finish_b}) {
    ServiceOptions options;
    options.max_active = 2;
    auto service = make_service(2, 20, options);
    const CampaignId c1 = service->submit(spec("alice", 3, 3, 1.0), 0.0);
    const CampaignId c2 = service->submit(spec("bob", 2, 4, 2.0), 0.0);
    const CampaignId c3 = service->submit(spec("carol", 2, 2, 1.0), 1500.0);
    EXPECT_TRUE(service->run());
    for (const CampaignId id : {c1, c2, c3})
      finishes->push_back(service->campaign(id).finish_time);
  }
  EXPECT_EQ(finish_a, finish_b);  // bit-for-bit, not approximately
}

TEST(CampaignService, FairShareAdmitsTheLeastConsumingOwnerFirst) {
  // alice's first campaign runs alone and racks up consumption; when it
  // finishes, fair share admits bob's queued campaign before alice's second
  // one, despite submission order. FIFO does the opposite.
  const auto run_policy = [](QueuePolicy policy) {
    ServiceOptions options;
    options.policy = policy;
    options.max_active = 1;
    auto service = make_service(1, 24, options);
    const CampaignId a1 = service->submit(spec("alice", 2, 2), 0.0);
    const CampaignId a2 = service->submit(spec("alice", 2, 2), 0.0);
    const CampaignId b1 = service->submit(spec("bob", 2, 2), 0.0);
    EXPECT_TRUE(service->run());
    (void)a1;
    return std::pair{service->campaign(a2).admit_time,
                     service->campaign(b1).admit_time};
  };

  const auto [fifo_a2, fifo_b1] = run_policy(QueuePolicy::kFifo);
  EXPECT_LT(fifo_a2, fifo_b1);
  const auto [fair_a2, fair_b1] = run_policy(QueuePolicy::kWeightedFairShare);
  EXPECT_LT(fair_b1, fair_a2);
}

TEST(CampaignService, ShortestRemainingAdmitsTheSmallCampaignFirst) {
  ServiceOptions options;
  options.policy = QueuePolicy::kShortestRemaining;
  options.max_active = 1;
  auto service = make_service(1, 24, options);
  (void)service->submit(spec("alice", 3, 3), 0.0);     // occupies the grid
  const CampaignId big = service->submit(spec("bob", 6, 3), 0.0);
  const CampaignId tiny = service->submit(spec("carol", 1, 1), 0.0);
  EXPECT_TRUE(service->run());
  EXPECT_LT(service->campaign(tiny).admit_time,
            service->campaign(big).admit_time);
}

TEST(CampaignService, WeightSkewsConcurrentLeases) {
  // Two owners sharing one cluster, 3:1 weights: the heavy one finishes
  // first because it holds the bigger slice throughout.
  auto service = make_service(1, 24);
  const CampaignId heavy = service->submit(spec("heavy", 3, 4, 3.0), 0.0);
  const CampaignId light = service->submit(spec("light", 3, 4, 1.0), 0.0);
  EXPECT_TRUE(service->run());
  EXPECT_LT(service->campaign(heavy).finish_time,
            service->campaign(light).finish_time);
}

TEST(CampaignService, ObsMetricsCoverTheRun) {
  obs::set_enabled(true);
  obs::reset();
  {
    ServiceOptions options;
    options.max_active = 1;
    options.queue_capacity = 1;
    auto service = make_service(1, 24, options);
    (void)service->submit(spec("alice", 2, 3), 0.0);
    (void)service->submit(spec("bob", 2, 3), 0.0);
    (void)service->submit(spec("carol", 1, 1), 0.0);  // rejected: queue full
    EXPECT_TRUE(service->run());
  }
  auto& metrics = obs::metrics();
  EXPECT_EQ(metrics.counter("service.campaigns.submitted").value(), 3u);
  EXPECT_EQ(metrics.counter("service.campaigns.admitted").value(), 2u);
  EXPECT_EQ(metrics.counter("service.campaigns.rejected").value(), 1u);
  EXPECT_EQ(metrics.counter("service.campaigns.completed").value(), 2u);
  EXPECT_EQ(metrics.counter("service.months.completed").value(), 12u);
  EXPECT_GT(metrics.counter("service.lease.changes").value(), 0u);
  EXPECT_EQ(metrics.histogram("service.queue.wait_s").snapshot().count, 2u);
  EXPECT_EQ(metrics.gauge("service.queue.depth").value(), 0.0);
  obs::set_enabled(false);
  obs::reset();
}

}  // namespace
}  // namespace oagrid::service
