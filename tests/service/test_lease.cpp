#include "service/lease.hpp"

#include <gtest/gtest.h>

#include "platform/profiles.hpp"

namespace oagrid::service {
namespace {

// A two-cluster grid with known shapes: min_group = 4, max_group = 11 on
// every built-in profile, so the granularity numbers below are stable.
platform::Grid two_clusters(ProcCount resources) {
  std::vector<platform::Cluster> clusters;
  clusters.push_back(platform::make_builtin_cluster(0, resources));
  clusters.push_back(platform::make_builtin_cluster(1, resources));
  return platform::Grid(std::move(clusters));
}

LeaseClaim pinned_claim(CampaignId id, double weight,
                        std::vector<std::pair<ClusterId, Count>> pinned) {
  LeaseClaim claim;
  claim.campaign = id;
  claim.weight = weight;
  claim.pinned = std::move(pinned);
  for (const auto& [cluster, count] : claim.pinned)
    claim.unfinished_total += count;
  return claim;
}

LeaseClaim newcomer_claim(CampaignId id, double weight, Count scenarios) {
  LeaseClaim claim;
  claim.campaign = id;
  claim.weight = weight;
  claim.newcomer = true;
  claim.unfinished_total = scenarios;
  return claim;
}

ProcCount granted(const std::vector<Lease>& plan, CampaignId campaign,
                  ClusterId cluster) {
  for (const Lease& lease : plan)
    if (lease.campaign == campaign && lease.cluster == cluster)
      return lease.procs;
  return 0;
}

TEST(LeaseManager, SoleClaimantTakesWholeClusterUpToCap) {
  const auto grid = two_clusters(40);
  LeaseManager manager(&grid);

  const auto plan =
      manager.plan({pinned_claim(1, 1.0, {{0, 10}})});
  EXPECT_EQ(granted(plan, 1, 0), 40);  // 10 scenarios can use 40 procs
  EXPECT_EQ(granted(plan, 1, 1), 0);   // nothing pinned there

  // With one scenario left, there is no point leasing past max_group.
  const auto small = manager.plan({pinned_claim(1, 1.0, {{0, 1}})});
  EXPECT_EQ(granted(small, 1, 0), 11);
}

TEST(LeaseManager, EqualWeightsSplitEvenly) {
  const auto grid = two_clusters(40);
  LeaseManager manager(&grid);
  const auto plan = manager.plan({pinned_claim(1, 1.0, {{0, 10}}),
                                  pinned_claim(2, 1.0, {{0, 10}})});
  EXPECT_EQ(granted(plan, 1, 0), 20);
  EXPECT_EQ(granted(plan, 2, 0), 20);
}

TEST(LeaseManager, WeightsSkewTheSplit) {
  const auto grid = two_clusters(30);
  LeaseManager manager(&grid);
  const auto plan = manager.plan({pinned_claim(1, 2.0, {{0, 10}}),
                                  pinned_claim(2, 1.0, {{0, 10}})});
  EXPECT_EQ(granted(plan, 1, 0), 20);  // 2:1 weighted max-min
  EXPECT_EQ(granted(plan, 2, 0), 10);
}

TEST(LeaseManager, PinnedFloorSurvivesHeavyCompetition) {
  const auto grid = two_clusters(24);
  LeaseManager manager(&grid);
  // Campaign 2's scenarios are stuck on cluster 0 (cannot change location);
  // even a 100x-weight competitor cannot squeeze it below min_group.
  const auto plan = manager.plan({pinned_claim(1, 100.0, {{0, 10}}),
                                  pinned_claim(2, 1.0, {{0, 10}})});
  EXPECT_GE(granted(plan, 2, 0), grid.cluster(0).min_group());
  EXPECT_GT(granted(plan, 1, 0), granted(plan, 2, 0));
  EXPECT_EQ(granted(plan, 1, 0) + granted(plan, 2, 0), 24);
}

TEST(LeaseManager, SubMinimumLeasesAreDroppedAndReoffered) {
  const auto grid = two_clusters(9);  // room for two groups nowhere
  LeaseManager manager(&grid);
  // Three equal newcomers on a 9-proc cluster would get 3 procs each —
  // below min_group 4, useless. The plan must drop the newest claimants and
  // re-offer their processors instead of leaking slivers.
  const auto plan = manager.plan({newcomer_claim(1, 1.0, 4),
                                  newcomer_claim(2, 1.0, 4),
                                  newcomer_claim(3, 1.0, 4)});
  int useful = 0;
  for (ClusterId c = 0; c < grid.cluster_count(); ++c)
    for (CampaignId id = 1; id <= 3; ++id) {
      const ProcCount procs = granted(plan, id, c);
      if (procs > 0) {
        EXPECT_GE(procs, grid.cluster(c).min_group());
        ++useful;
      }
    }
  EXPECT_GE(useful, 2);  // two clusters' worth of useful leases exist
}

TEST(LeaseManager, NewcomerClaimsEveryCluster) {
  const auto grid = two_clusters(20);
  LeaseManager manager(&grid);
  const auto plan = manager.plan({newcomer_claim(1, 1.0, 10)});
  EXPECT_EQ(granted(plan, 1, 0), 20);
  EXPECT_EQ(granted(plan, 1, 1), 20);
}

TEST(LeaseManager, AdmissibleTracksRemainingFloorRoom) {
  const auto grid = two_clusters(8);  // each cluster fits two min-groups
  LeaseManager manager(&grid);
  EXPECT_TRUE(manager.admissible({}));
  EXPECT_TRUE(manager.admissible({pinned_claim(1, 1.0, {{0, 5}})}));
  // Two pinned incumbents per cluster exhaust every floor slot.
  EXPECT_FALSE(manager.admissible({pinned_claim(1, 1.0, {{0, 5}, {1, 5}}),
                                   pinned_claim(2, 1.0, {{0, 5}, {1, 5}})}));
}

TEST(LeaseManager, PlanIsDeterministic) {
  const auto grid = two_clusters(37);
  LeaseManager manager(&grid);
  const std::vector<LeaseClaim> claims{pinned_claim(1, 1.5, {{0, 7}, {1, 3}}),
                                       pinned_claim(2, 1.0, {{0, 2}}),
                                       newcomer_claim(3, 2.0, 5)};
  const auto a = manager.plan(claims);
  const auto b = manager.plan(claims);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

}  // namespace
}  // namespace oagrid::service
