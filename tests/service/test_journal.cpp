#include "service/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace oagrid::service {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

JournalConfig test_config() {
  JournalConfig config;
  config.policy = 1;
  config.heuristic = 3;
  config.max_active = 4;
  return config;
}

std::vector<Event> sample_events() {
  std::vector<Event> events;
  {
    Event e;
    e.type = EventType::kCampaignSubmitted;
    e.campaign = 1;
    e.time = 0.0;
    e.owner = "alice";
    e.weight = 2.5;
    e.scenarios = 4;
    e.months = 6;
    events.push_back(e);
  }
  {
    Event e;
    e.type = EventType::kCampaignAdmitted;
    e.campaign = 1;
    e.time = 0.0;
    e.assignment = {0, 0, 1, 1};
    events.push_back(e);
  }
  {
    Event e;
    e.type = EventType::kLeaseChanged;
    e.campaign = 1;
    e.time = 0.0;
    e.cluster = 1;
    e.procs = 16;
    events.push_back(e);
  }
  {
    Event e;
    e.type = EventType::kMonthCompleted;
    e.campaign = 1;
    e.time = 1234.5;
    e.scenario = 2;
    e.month = 0;
    e.cluster = 1;
    e.group = 1;
    events.push_back(e);
  }
  {
    Event e;
    e.type = EventType::kCampaignRejected;
    e.campaign = 2;
    e.time = 50.0;
    events.push_back(e);
  }
  {
    Event e;
    e.type = EventType::kCampaignCompleted;
    e.campaign = 1;
    e.time = 9999.25;
    e.makespan = 9999.25;
    events.push_back(e);
  }
  return events;
}

TEST(Crc32, MatchesTheStandardCheckValue) {
  // The canonical CRC-32 check vector ("123456789" -> 0xCBF43926).
  const std::string data = "123456789";
  EXPECT_EQ(crc32(data.data(), data.size()), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(EventCodec, RoundTripsEveryType) {
  for (const Event& event : sample_events()) {
    const Event back = decode_event(encode_event(event));
    EXPECT_TRUE(back == event) << to_string(event.type);
  }
}

TEST(EventCodec, RejectsTruncatedPayloads) {
  for (const Event& event : sample_events()) {
    const std::string payload = encode_event(event);
    for (std::size_t cut = 0; cut < payload.size(); ++cut)
      EXPECT_THROW((void)decode_event(payload.substr(0, cut)),
                   std::invalid_argument)
          << to_string(event.type) << " cut at " << cut;
  }
}

TEST(EventCodec, RejectsTrailingBytes) {
  const std::string payload = encode_event(sample_events()[0]) + "x";
  EXPECT_THROW((void)decode_event(payload), std::invalid_argument);
}

TEST(Journal, MissingFileReadsAsAbsent) {
  const JournalContents contents =
      read_journal(temp_dir("journal-missing") + "/journal.bin");
  EXPECT_FALSE(contents.exists);
  EXPECT_TRUE(contents.events.empty());
}

TEST(Journal, HeaderOnlyJournalIsEmptyNotTorn) {
  const std::string path = temp_dir("journal-empty") + "/journal.bin";
  { JournalWriter writer(path, 7, test_config()); }
  const JournalContents contents = read_journal(path);
  EXPECT_TRUE(contents.exists);
  EXPECT_EQ(contents.base_seq, 7u);
  EXPECT_EQ(contents.config, test_config());
  EXPECT_TRUE(contents.events.empty());
  EXPECT_FALSE(contents.torn_tail);
  EXPECT_EQ(contents.end_seq(), 7u);
}

TEST(Journal, WriteReadRoundTrip) {
  const std::string path = temp_dir("journal-roundtrip") + "/journal.bin";
  const std::vector<Event> events = sample_events();
  {
    JournalWriter writer(path, 0, test_config());
    for (const Event& event : events) writer.append(event);
    EXPECT_EQ(writer.seq(), events.size());
  }
  const JournalContents contents = read_journal(path);
  ASSERT_EQ(contents.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_TRUE(contents.events[i] == events[i]) << "record " << i;
  EXPECT_FALSE(contents.torn_tail);
}

TEST(Journal, BadMagicThrows) {
  const std::string path = temp_dir("journal-magic") + "/journal.bin";
  write_file(path, "this is not a journal file, not even close");
  EXPECT_THROW((void)read_journal(path), std::invalid_argument);
}

TEST(Journal, EveryTruncationPointYieldsAValidPrefix) {
  // WAL semantics: however the crash sheared the file, the surviving prefix
  // of whole records must decode, and nothing may throw.
  const std::string path = temp_dir("journal-torn") + "/journal.bin";
  const std::vector<Event> events = sample_events();
  {
    JournalWriter writer(path, 0, test_config());
    for (const Event& event : events) writer.append(event);
  }
  const std::string full = read_file(path);
  const std::string cut_path = temp_dir("journal-torn-cut") + "/journal.bin";

  std::size_t clean_cuts = 0;
  for (std::size_t cut = 30; cut < full.size(); ++cut) {
    write_file(cut_path, full.substr(0, cut));
    const JournalContents contents = read_journal(cut_path);
    ASSERT_TRUE(contents.exists);
    ASSERT_LE(contents.events.size(), events.size());
    for (std::size_t i = 0; i < contents.events.size(); ++i)
      EXPECT_TRUE(contents.events[i] == events[i])
          << "cut " << cut << " record " << i;
    if (contents.torn_tail) {
      EXPECT_GT(contents.dropped_bytes, 0u);
      EXPECT_LT(contents.events.size(), events.size());
    } else {
      ++clean_cuts;  // cut landed exactly on a record boundary
    }
  }
  EXPECT_EQ(clean_cuts, events.size() - 1);
}

TEST(Journal, CorruptMiddleRecordDropsTheTail) {
  const std::string path = temp_dir("journal-corrupt") + "/journal.bin";
  const std::vector<Event> events = sample_events();
  {
    JournalWriter writer(path, 0, test_config());
    for (const Event& event : events) writer.append(event);
  }
  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-journal
  write_file(path, bytes);

  const JournalContents contents = read_journal(path);
  EXPECT_TRUE(contents.torn_tail);
  EXPECT_LT(contents.events.size(), events.size());
  for (std::size_t i = 0; i < contents.events.size(); ++i)
    EXPECT_TRUE(contents.events[i] == events[i]);
}

TEST(Journal, ReopenTruncatesTornTailAndContinues) {
  const std::string path = temp_dir("journal-reopen") + "/journal.bin";
  const std::vector<Event> events = sample_events();
  {
    JournalWriter writer(path, 0, test_config());
    for (const Event& event : events) writer.append(event);
  }
  // Shear the last record in half.
  const std::string full = read_file(path);
  write_file(path, full.substr(0, full.size() - 5));

  JournalContents torn = read_journal(path);
  ASSERT_TRUE(torn.torn_tail);
  ASSERT_EQ(torn.events.size(), events.size() - 1);
  {
    JournalWriter writer = JournalWriter::reopen(path, torn);
    EXPECT_EQ(writer.seq(), events.size() - 1);
    writer.append(events.back());
  }
  const JournalContents healed = read_journal(path);
  EXPECT_FALSE(healed.torn_tail);
  ASSERT_EQ(healed.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_TRUE(healed.events[i] == events[i]);
}

TEST(Snapshot, RoundTripAndAtomicReplace) {
  const std::string dir = temp_dir("snapshot");
  const std::string path = dir + "/snapshot.bin";
  write_snapshot(path, 42, "opaque service state payload");
  write_snapshot(path, 43, "a newer payload");  // replaces atomically

  const SnapshotContents contents = read_snapshot(path);
  ASSERT_TRUE(contents.valid);
  EXPECT_EQ(contents.seq, 43u);
  EXPECT_EQ(contents.payload, "a newer payload");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(Snapshot, MissingOrCorruptReadsAsInvalid) {
  const std::string dir = temp_dir("snapshot-bad");
  EXPECT_FALSE(read_snapshot(dir + "/nope.bin").valid);

  const std::string path = dir + "/snapshot.bin";
  write_snapshot(path, 9, "payload bytes here");
  std::string bytes = read_file(path);
  // Corrupt the payload: CRC must catch it.
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  write_file(path, bytes);
  EXPECT_FALSE(read_snapshot(path).valid);

  // Truncated snapshot: also invalid, never throws.
  write_file(path, read_file(path).substr(0, bytes.size() - 7));
  EXPECT_FALSE(read_snapshot(path).valid);

  write_file(path, "bad magic snapshot file");
  EXPECT_FALSE(read_snapshot(path).valid);
}

TEST(GroupCommit, ProducesByteIdenticalJournals) {
  const std::string dir = temp_dir("group-commit-bytes");
  const std::vector<Event> events = sample_events();

  const std::string per_record = dir + "/per_record.bin";
  {
    JournalWriter writer(per_record, 0, test_config());
    for (const Event& event : events) writer.append(event);
    EXPECT_EQ(writer.flushes(), events.size());
  }
  const std::string batched = dir + "/batched.bin";
  {
    JournalWriter writer(batched, 0, test_config());
    writer.set_group_commit(true);
    // Two batches of arbitrary size: frames are concatenated in append
    // order, so the cut points must leave no trace in the bytes.
    for (std::size_t i = 0; i < 4; ++i) writer.append(events[i]);
    EXPECT_EQ(writer.pending_records(), 4u);
    EXPECT_EQ(writer.commit(), 4u);
    for (std::size_t i = 4; i < events.size(); ++i) writer.append(events[i]);
    EXPECT_EQ(writer.commit(), events.size() - 4);
    EXPECT_EQ(writer.flushes(), 2u);
    EXPECT_EQ(writer.commit(), 0u);  // nothing pending: no third flush
    EXPECT_EQ(writer.flushes(), 2u);
  }
  EXPECT_EQ(read_file(per_record), read_file(batched));
}

TEST(GroupCommit, DiscardPendingLosesExactlyTheUncommittedBatch) {
  const std::string dir = temp_dir("group-commit-discard");
  const std::string path = dir + "/journal.bin";
  const std::vector<Event> events = sample_events();

  JournalWriter writer(path, 0, test_config());
  writer.set_group_commit(true);
  for (std::size_t i = 0; i < 3; ++i) writer.append(events[i]);
  writer.commit();
  for (std::size_t i = 3; i < events.size(); ++i) writer.append(events[i]);
  EXPECT_EQ(writer.seq(), events.size());  // buffered records are history...
  writer.discard_pending();                // ...until the emulated SIGKILL
  EXPECT_EQ(writer.seq(), 3u);
  EXPECT_EQ(writer.pending_records(), 0u);

  const JournalContents contents = read_journal(path);
  ASSERT_TRUE(contents.exists);
  EXPECT_FALSE(contents.torn_tail);
  ASSERT_EQ(contents.events.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_TRUE(contents.events[i] == events[i]);
}

TEST(GroupCommit, TurningOffCommitsThePendingBatchFirst) {
  const std::string dir = temp_dir("group-commit-toggle");
  const std::string path = dir + "/journal.bin";
  const std::vector<Event> events = sample_events();

  JournalWriter writer(path, 0, test_config());
  writer.set_group_commit(true);
  writer.append(events[0]);
  writer.append(events[1]);
  writer.set_group_commit(false);  // commits: no record changes durability
  EXPECT_EQ(writer.pending_records(), 0u);
  writer.append(events[2]);  // back to flush-per-append
  EXPECT_EQ(read_journal(path).events.size(), 3u);
}

TEST(GroupCommit, TornBatchTailRecoversLikeATornRecord) {
  const std::string dir = temp_dir("group-commit-torn");
  const std::string path = dir + "/journal.bin";
  const std::vector<Event> events = sample_events();

  JournalWriter writer(path, 0, test_config());
  writer.set_group_commit(true);
  for (std::size_t i = 0; i < 3; ++i) writer.append(events[i]);
  writer.commit();
  for (std::size_t i = 3; i < events.size(); ++i) writer.append(events[i]);
  writer.commit();

  // Tear the file mid-way through the second batch: the first batch and the
  // second batch's whole records survive; the cut record is dropped.
  std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() - 5));
  const JournalContents torn = read_journal(path);
  ASSERT_TRUE(torn.exists);
  EXPECT_TRUE(torn.torn_tail);
  ASSERT_EQ(torn.events.size(), events.size() - 1);
  for (std::size_t i = 0; i + 1 < events.size(); ++i)
    EXPECT_TRUE(torn.events[i] == events[i]);

  // A batched writer reopens the torn journal exactly like a per-record one.
  JournalWriter reopened = JournalWriter::reopen(path, torn);
  reopened.set_group_commit(true);
  reopened.append(events.back());
  reopened.commit();
  const JournalContents healed = read_journal(path);
  EXPECT_FALSE(healed.torn_tail);
  ASSERT_EQ(healed.events.size(), events.size());
  EXPECT_TRUE(healed.events.back() == events.back());
}

}  // namespace
}  // namespace oagrid::service
