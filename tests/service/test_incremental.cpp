/// \file test_incremental.cpp
/// \brief The incremental control-plane bookkeeping is an *exact*
/// optimization: claims, plans, admissibility, admission order and dispatch
/// coverage must equal a full recompute on every tick, for any workload.
/// These property tests drive randomized campaign mixes through the service
/// four ways — incremental with the built-in cross-check enabled,
/// incremental vs full recomputation, serial vs parallel estimation — and
/// require identical outcomes and identical journal bytes.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "platform/profiles.hpp"
#include "service/journal.hpp"
#include "service/service.hpp"

namespace oagrid::service {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

platform::Grid test_grid() {
  std::vector<platform::Cluster> clusters;
  clusters.push_back(platform::make_builtin_cluster(0, 24));
  clusters.push_back(platform::make_builtin_cluster(1, 16));
  clusters.push_back(platform::make_builtin_cluster(2, 20));
  return platform::Grid(std::move(clusters));
}

struct Entry {
  CampaignSpec spec;
  Seconds at = 0.0;
};

/// Randomized multi-tenant workload: a handful of owners with mixed
/// weights, sizes and staggered arrivals, sized so admission, queueing,
/// lease churn and retirement all occur.
std::vector<Entry> random_workload(std::uint64_t seed) {
  Rng rng(seed);
  const Count n = rng.uniform_int(6, 14);
  std::vector<Entry> entries;
  Seconds at = 0.0;
  for (Count i = 0; i < n; ++i) {
    Entry entry;
    entry.spec.owner = "owner" + std::to_string(rng.uniform_int(0, 3));
    entry.spec.weight = 0.5 + 0.5 * static_cast<double>(rng.uniform_int(1, 4));
    entry.spec.scenarios = rng.uniform_int(1, 5);
    entry.spec.months = rng.uniform_int(1, 6);
    at += static_cast<double>(rng.uniform_int(0, 4000));
    entry.at = at;
    entries.push_back(std::move(entry));
  }
  return entries;
}

struct Final {
  std::string status;
  Seconds admit_time = 0.0;
  Seconds finish_time = 0.0;
  Count months_done = 0;
  std::vector<MonthIndex> frontier;
  std::vector<ClusterId> assignment;
  bool operator==(const Final&) const = default;
};

std::map<CampaignId, Final> capture(const CampaignService& service) {
  std::map<CampaignId, Final> out;
  for (const CampaignId id : service.campaign_ids()) {
    const CampaignState& state = service.campaign(id);
    out[id] = Final{to_string(state.status), state.admit_time,
                    state.finish_time,       state.months_done,
                    state.frontier,          state.assignment};
  }
  return out;
}

struct RunResult {
  std::map<CampaignId, Final> finals;
  std::string journal_bytes;
  std::uint64_t plan_reuse = 0;
};

RunResult run_workload(const std::vector<Entry>& entries, QueuePolicy policy,
                       const std::string& dir, bool incremental,
                       bool verify_incremental,
                       std::size_t estimator_threads = 1) {
  ServiceOptions options;
  options.policy = policy;
  options.max_active = 3;
  options.queue_capacity = 8;  // small enough that rejections happen too
  options.journal_dir = dir;
  options.incremental = incremental;
  options.verify_incremental = verify_incremental;
  options.estimator_threads = estimator_threads;
  CampaignService service(test_grid(), std::move(options));
  for (const Entry& entry : entries)
    (void)service.submit(entry.spec, entry.at);
  EXPECT_TRUE(service.run());
  RunResult result;
  result.finals = capture(service);
  result.journal_bytes = read_file(CampaignService::journal_path(dir));
  result.plan_reuse = service.plan_reuse();
  return result;
}

constexpr QueuePolicy kPolicies[] = {QueuePolicy::kFifo,
                                     QueuePolicy::kWeightedFairShare,
                                     QueuePolicy::kShortestRemaining};

// The core property: with verify_incremental on, every incremental claim
// set, cached plan, admissibility answer, admission pick and dispatch scan
// is checked against a full recompute inside the service — any divergence
// throws and fails the run. Randomized over seeds and all three policies.
TEST(Incremental, CrossCheckHoldsOverRandomizedWorkloads) {
  std::map<QueuePolicy, std::uint64_t> reuse;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const std::vector<Entry> entries = random_workload(seed);
    for (const QueuePolicy policy : kPolicies) {
      const std::string dir =
          temp_dir("incr-verify-" + std::to_string(seed) + "-" +
                   std::string(to_string(policy)));
      const RunResult result =
          run_workload(entries, policy, dir, /*incremental=*/true,
                       /*verify_incremental=*/true);
      reuse[policy] += result.plan_reuse;
    }
  }
  // Plans are reused when a rebalance admits a waiting campaign; individual
  // workloads may never queue anyone, but across the seeds every policy must
  // exercise the cache path (and thus its reuse-time cross-check above).
  for (const QueuePolicy policy : kPolicies)
    EXPECT_GT(reuse[policy], 0u) << to_string(policy);
}

// Incremental and full-recompute modes must be observationally identical:
// same outcomes, same journal bytes, for every seed and policy.
TEST(Incremental, MatchesFullRecomputeBitForBit) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::vector<Entry> entries = random_workload(seed);
    for (const QueuePolicy policy : kPolicies) {
      const std::string tag =
          std::to_string(seed) + "-" + std::string(to_string(policy));
      const RunResult fast =
          run_workload(entries, policy, temp_dir("incr-fast-" + tag),
                       /*incremental=*/true, /*verify_incremental=*/false);
      const RunResult slow =
          run_workload(entries, policy, temp_dir("incr-slow-" + tag),
                       /*incremental=*/false, /*verify_incremental=*/false);
      ASSERT_EQ(fast.finals, slow.finals) << "seed " << seed;
      ASSERT_EQ(fast.journal_bytes, slow.journal_bytes) << "seed " << seed;
    }
  }
}

// Batched estimation fans vectors over the shared pool but folds them in
// request order, so any thread count must give bit-identical decisions.
// srmf exercises it hardest: estimates feed the admission order itself.
TEST(Incremental, EstimatorThreadCountNeverChangesTheOutcome) {
  for (std::uint64_t seed = 3; seed <= 6; ++seed) {
    const std::vector<Entry> entries = random_workload(seed);
    for (const QueuePolicy policy :
         {QueuePolicy::kShortestRemaining, QueuePolicy::kWeightedFairShare}) {
      const std::string tag =
          std::to_string(seed) + "-" + std::string(to_string(policy));
      const RunResult serial = run_workload(
          entries, policy, temp_dir("incr-t1-" + tag), true, false,
          /*estimator_threads=*/1);
      const RunResult parallel = run_workload(
          entries, policy, temp_dir("incr-t4-" + tag), true, false,
          /*estimator_threads=*/4);
      const RunResult whole_pool = run_workload(
          entries, policy, temp_dir("incr-t0-" + tag), true, false,
          /*estimator_threads=*/0);
      ASSERT_EQ(serial.finals, parallel.finals) << "seed " << seed;
      ASSERT_EQ(serial.journal_bytes, parallel.journal_bytes)
          << "seed " << seed;
      ASSERT_EQ(serial.finals, whole_pool.finals) << "seed " << seed;
      ASSERT_EQ(serial.journal_bytes, whole_pool.journal_bytes)
          << "seed " << seed;
    }
  }
}

// Recovery must rebuild the incremental bookkeeping from a snapshot well
// enough to survive the cross-check for the rest of the run.
TEST(Incremental, CrossCheckSurvivesSnapshotRecovery) {
  const std::vector<Entry> entries = random_workload(7);
  const std::string base_dir = temp_dir("incr-recover-base");
  const RunResult expected =
      run_workload(entries, QueuePolicy::kWeightedFairShare, base_dir, true,
                   /*verify_incremental=*/true);

  const std::string dir = temp_dir("incr-recover");
  {
    ServiceOptions options;
    options.policy = QueuePolicy::kWeightedFairShare;
    options.max_active = 3;
    options.queue_capacity = 8;
    options.journal_dir = dir;
    options.snapshot_every = 10;
    options.kill_after_records = 25;
    options.verify_incremental = true;
    CampaignService victim(test_grid(), std::move(options));
    for (const Entry& entry : entries)
      (void)victim.submit(entry.spec, entry.at);
    ASSERT_FALSE(victim.run());
  }
  ServiceOptions options;
  options.policy = QueuePolicy::kWeightedFairShare;
  options.max_active = 3;
  options.queue_capacity = 8;
  options.journal_dir = dir;
  options.snapshot_every = 10;
  options.verify_incremental = true;
  CampaignService survivor(test_grid(), std::move(options));
  const RecoveryReport report = survivor.recover();
  EXPECT_TRUE(report.journal_found);
  const std::size_t known = survivor.campaign_ids().size();
  for (std::size_t i = known; i < entries.size(); ++i)
    (void)survivor.submit(entries[i].spec, entries[i].at);
  ASSERT_TRUE(survivor.run());
  EXPECT_EQ(capture(survivor), expected.finals);
}

}  // namespace
}  // namespace oagrid::service
