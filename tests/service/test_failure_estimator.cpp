#include "service/estimator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/checkpoint.hpp"
#include "platform/profiles.hpp"
#include "service/service.hpp"

namespace oagrid::service {
namespace {

platform::Grid test_grid() { return platform::make_builtin_grid(25).prefix(3); }

TEST(FailureAwareEstimator, InactiveModelPassesThroughExactly) {
  const platform::Grid grid = test_grid();
  AnalyticEstimator analytic;
  FailureAwareEstimator estimator(analytic, grid,
                                  fault::FailureModel(grid.cluster_count()));

  for (ClusterId c = 0; c < grid.cluster_count(); ++c) {
    const auto inner =
        analytic.vector(grid.cluster(c), 8, 24, sched::Heuristic::kKnapsack);
    const auto wrapped =
        estimator.vector(grid.cluster(c), 8, 24, sched::Heuristic::kKnapsack);
    ASSERT_EQ(wrapped.size(), inner.size());
    for (std::size_t k = 0; k < inner.size(); ++k)
      EXPECT_EQ(wrapped[k], inner[k]);  // exact pass-through, not NEAR
  }
}

TEST(FailureAwareEstimator, UnknownClusterNamePassesThrough) {
  const platform::Grid grid = test_grid();
  AnalyticEstimator analytic;
  fault::FailureModel model =
      fault::FailureModel::uniform_exponential(grid.cluster_count(), 30000.0,
                                               2000.0);
  FailureAwareEstimator estimator(analytic, grid, model);

  const auto stranger = platform::make_builtin_cluster(4, 25)
                            .with_resources(20);  // not in the grid
  const auto inner =
      analytic.vector(stranger, 6, 12, sched::Heuristic::kKnapsack);
  const auto wrapped =
      estimator.vector(stranger, 6, 12, sched::Heuristic::kKnapsack);
  ASSERT_EQ(wrapped.size(), inner.size());
  for (std::size_t k = 0; k < inner.size(); ++k)
    EXPECT_EQ(wrapped[k], inner[k]);
}

TEST(FailureAwareEstimator, InflationMatchesExpectedMakespan) {
  const platform::Grid grid = test_grid();
  const Count scenarios = 6, months = 24;
  const MonthIndex cadence = 3;

  fault::FailureModel model(grid.cluster_count());
  model.set_exponential(0, 40000.0, 2000.0);

  AnalyticEstimator analytic;
  FailureAwareEstimator estimator(analytic, grid, model, cadence);

  const auto inner = analytic.vector(grid.cluster(0), scenarios, months,
                                     sched::Heuristic::kKnapsack);
  const auto wrapped = estimator.vector(grid.cluster(0), scenarios, months,
                                        sched::Heuristic::kKnapsack);
  ASSERT_EQ(wrapped.size(), inner.size());
  for (std::size_t i = 0; i < inner.size(); ++i) {
    const double k = static_cast<double>(i) + 1.0;
    const Seconds period = inner[i] * static_cast<double>(cadence) /
                           (k * static_cast<double>(months));
    EXPECT_EQ(wrapped[i],
              fault::expected_makespan(inner[i], model.process(0), period));
    EXPECT_GT(wrapped[i], inner[i]);  // failures only ever cost time
  }

  // Clusters without a process stay exact.
  const auto quiet_inner = analytic.vector(grid.cluster(1), scenarios, months,
                                           sched::Heuristic::kKnapsack);
  const auto quiet = estimator.vector(grid.cluster(1), scenarios, months,
                                      sched::Heuristic::kKnapsack);
  for (std::size_t i = 0; i < quiet.size(); ++i)
    EXPECT_EQ(quiet[i], quiet_inner[i]);
}

TEST(FailureAwareEstimator, DeadClusterBecomesUnavailable) {
  const platform::Grid grid = test_grid();
  fault::FailureModel model(grid.cluster_count());
  model.set_down(2);

  AnalyticEstimator analytic;
  FailureAwareEstimator estimator(analytic, grid, model);
  const auto vec =
      estimator.vector(grid.cluster(2), 6, 24, sched::Heuristic::kKnapsack);
  for (const Seconds entry : vec) EXPECT_EQ(entry, fault::kUnavailableTime);
}

TEST(FailureAwareEstimator, RejectsMismatchedModelAndCadence) {
  const platform::Grid grid = test_grid();
  AnalyticEstimator analytic;
  EXPECT_THROW(FailureAwareEstimator(analytic, grid, fault::FailureModel(1)),
               std::invalid_argument);
  EXPECT_THROW(FailureAwareEstimator(analytic, grid,
                                     fault::FailureModel(grid.cluster_count()),
                                     0),
               std::invalid_argument);
}

TEST(FailureAwareEstimator, ServiceCompletesWithDeadCluster) {
  // The deadlock regression: a campaign whose lease plan includes a dead
  // cluster must still finish — the estimator marks the cluster unavailable,
  // Algorithm 1 places nothing there, and the service degrades the lease.
  const platform::Grid grid = test_grid();
  fault::FailureModel model(grid.cluster_count());
  model.set_down(0);  // kill the *fastest* cluster

  AnalyticEstimator analytic;
  FailureAwareEstimator estimator(analytic, grid, model);

  ServiceOptions options;
  options.max_active = 2;
  options.estimator = &estimator;
  CampaignService service(grid, options);

  CampaignSpec spec;
  spec.owner = "alice";
  spec.scenarios = 8;
  spec.months = 24;
  const auto a = service.submit(spec, 0.0);
  spec.owner = "bob";
  const auto b = service.submit(spec, 100.0);

  ASSERT_TRUE(service.run());
  EXPECT_GT(service.campaign(a).makespan(), 0.0);
  EXPECT_GT(service.campaign(b).makespan(), 0.0);
  EXPECT_LT(service.campaign(a).makespan(), fault::kUnavailableTime);
  EXPECT_LT(service.campaign(b).makespan(), fault::kUnavailableTime);
}

}  // namespace
}  // namespace oagrid::service
