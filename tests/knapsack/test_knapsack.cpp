#include "knapsack/knapsack.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace oagrid::knapsack {
namespace {

Problem paper_items(int capacity, Count max_items) {
  // The paper's item universe: group sizes 4..11, value 1/T[G] from the
  // reference coupled table.
  const double times[] = {4724, 2904, 2177, 1854, 1662, 1539, 1456, 1260};
  Problem p;
  for (int i = 0; i < 8; ++i) p.items.push_back(Item{4 + i, 1.0 / times[i]});
  p.capacity = capacity;
  p.max_items = max_items;
  return p;
}

TEST(Knapsack, ValidationRejectsBadInstances) {
  Problem p;
  EXPECT_THROW(validate(p), std::invalid_argument);  // no items
  p.items.push_back(Item{0, 1.0});
  EXPECT_THROW(validate(p), std::invalid_argument);  // zero weight
  p.items[0] = Item{1, -1.0};
  EXPECT_THROW(validate(p), std::invalid_argument);  // negative value
  p.items[0] = Item{1, 1.0};
  p.capacity = -1;
  EXPECT_THROW(validate(p), std::invalid_argument);
  p.capacity = 1;
  p.max_items = -1;
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(Knapsack, ZeroCapacityYieldsEmptySolution) {
  const Problem p = paper_items(0, 10);
  for (const auto& solver : {solve_dp, solve_branch_bound, solve_exhaustive}) {
    const Solution s = solver(p);
    EXPECT_EQ(s.items_used, 0);
    EXPECT_DOUBLE_EQ(s.value, 0.0);
  }
}

TEST(Knapsack, ZeroCardinalityYieldsEmptySolution) {
  const Problem p = paper_items(100, 0);
  const Solution s = solve_dp(p);
  EXPECT_EQ(s.items_used, 0);
}

TEST(Knapsack, CapacityBelowSmallestItem) {
  const Problem p = paper_items(3, 10);
  const Solution s = solve_dp(p);
  EXPECT_EQ(s.items_used, 0);
  EXPECT_EQ(s.weight_used, 0);
}

TEST(Knapsack, ElevenProcessorsPreferTwoSmallGroups) {
  const Problem p = paper_items(11, 10);
  const Solution s = solve_dp(p);
  // A nice non-obvious optimum: {5, 6} yields 1/2904 + 1/2177 ~ 8.04e-4,
  // beating the single group of 11 (1/1260 ~ 7.94e-4). The knapsack grouping
  // genuinely trades group efficiency for group count here.
  EXPECT_EQ(s.items_used, 2);
  EXPECT_EQ(s.weight_used, 11);
  EXPECT_EQ(s.counts[1], 1);  // one group of 5
  EXPECT_EQ(s.counts[2], 1);  // one group of 6
  EXPECT_GT(s.value, 1.0 / 1260.0);
}

TEST(Knapsack, CardinalityCapBinds) {
  // Plenty of capacity, but at most 2 groups: take the two most valuable.
  const Problem p = paper_items(1000, 2);
  const Solution s = solve_dp(p);
  EXPECT_EQ(s.items_used, 2);
  EXPECT_EQ(s.counts[7], 2);  // two groups of 11
  EXPECT_TRUE(is_feasible(p, s));
}

TEST(Knapsack, AbundantResourcesGiveMaxGroups) {
  // R >= 11 * NS: the optimum is NS groups of 11 (the paper's observation
  // that "with a lot of resources, there are NS groups of 11 resources").
  const Problem p = paper_items(11 * 10, 10);
  const Solution s = solve_dp(p);
  EXPECT_EQ(s.items_used, 10);
  EXPECT_EQ(s.counts[7], 10);
}

TEST(Knapsack, PaperExampleR53) {
  // R = 53, NS = 10: the knapsack uses all 53 processors (e.g. 7 groups
  // mixing sizes) and beats the basic heuristic's 7x7 grouping in value.
  const Problem p = paper_items(53, 10);
  const Solution s = solve_dp(p);
  EXPECT_TRUE(is_feasible(p, s));
  const double basic_value = 7.0 / 1854.0;  // 7 groups of 7
  EXPECT_GT(s.value, basic_value);
  EXPECT_LE(s.weight_used, 53);
}

TEST(Knapsack, FeasibilityCheckerCatchesLies) {
  const Problem p = paper_items(20, 5);
  Solution s = solve_dp(p);
  ASSERT_TRUE(is_feasible(p, s));
  Solution wrong = s;
  wrong.value += 1.0;
  EXPECT_FALSE(is_feasible(p, wrong));
  wrong = s;
  wrong.counts[0] = -1;
  EXPECT_FALSE(is_feasible(p, wrong));
  wrong = s;
  wrong.counts.pop_back();
  EXPECT_FALSE(is_feasible(p, wrong));
}

TEST(Knapsack, BetterSolutionOrdering) {
  Solution a, b;
  a.value = 2.0;
  b.value = 1.0;
  EXPECT_TRUE(better_solution(a, b));
  EXPECT_FALSE(better_solution(b, a));
  b.value = 2.0;
  a.weight_used = 5;
  b.weight_used = 7;
  EXPECT_TRUE(better_solution(a, b));  // same value, fewer processors
  b.weight_used = 5;
  a.items_used = 1;
  b.items_used = 2;
  EXPECT_TRUE(better_solution(a, b));  // same value+weight, fewer groups
}

struct SweepCase {
  int capacity;
  Count max_items;
};

class KnapsackSolverAgreement : public ::testing::TestWithParam<SweepCase> {};

TEST_P(KnapsackSolverAgreement, AllSolversEquallyGood) {
  const auto [capacity, max_items] = GetParam();
  const Problem p = paper_items(capacity, max_items);
  const Solution dp = solve_dp(p);
  const Solution bb = solve_branch_bound(p);
  const Solution ex = solve_exhaustive(p);
  EXPECT_TRUE(is_feasible(p, dp));
  EXPECT_TRUE(is_feasible(p, bb));
  EXPECT_TRUE(is_feasible(p, ex));
  // All three must be mutually non-better (equal under the tie-break order).
  EXPECT_FALSE(better_solution(ex, dp)) << "dp suboptimal at R=" << capacity;
  EXPECT_FALSE(better_solution(dp, ex));
  EXPECT_FALSE(better_solution(ex, bb)) << "bb suboptimal at R=" << capacity;
  EXPECT_FALSE(better_solution(bb, ex));
}

INSTANTIATE_TEST_SUITE_P(
    PaperItemSweep, KnapsackSolverAgreement,
    ::testing::Values(SweepCase{4, 1}, SweepCase{11, 3}, SweepCase{15, 2},
                      SweepCase{23, 4}, SweepCase{31, 5}, SweepCase{40, 4},
                      SweepCase{53, 10}, SweepCase{64, 6}, SweepCase{77, 7},
                      SweepCase{90, 9}, SweepCase{110, 10}, SweepCase{120, 10}));

TEST(Knapsack, RandomInstancesDpMatchesExhaustive) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    Problem p;
    const int kinds = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < kinds; ++i)
      p.items.push_back(Item{static_cast<int>(rng.uniform_int(1, 9)),
                             rng.uniform(0.0, 2.0)});
    p.capacity = static_cast<int>(rng.uniform_int(0, 30));
    p.max_items = rng.uniform_int(0, 6);
    const Solution dp = solve_dp(p);
    const Solution bb = solve_branch_bound(p);
    const Solution ex = solve_exhaustive(p);
    EXPECT_TRUE(is_feasible(p, dp));
    EXPECT_NEAR(dp.value, ex.value, 1e-9 + 1e-9 * ex.value) << "trial " << trial;
    EXPECT_NEAR(bb.value, ex.value, 1e-9 + 1e-9 * ex.value) << "trial " << trial;
  }
}

TEST(Knapsack, GreedyIsFeasibleButSometimesSuboptimal) {
  // Greedy never violates constraints...
  for (const int r : {11, 20, 35, 53, 77}) {
    const Problem p = paper_items(r, 10);
    const Solution greedy = solve_greedy(p);
    EXPECT_TRUE(is_feasible(p, greedy)) << r;
    EXPECT_LE(greedy.value, solve_dp(p).value + 1e-12) << r;
  }
  // ...and there exists an instance where it strictly loses to the DP (the
  // reason the production path is the DP): capacity 11 — greedy grabs the
  // densest item (size 7 here) and strands 4 processors on a poor filler.
  const Problem p = paper_items(11, 10);
  const Solution greedy = solve_greedy(p);
  const Solution dp = solve_dp(p);
  EXPECT_LT(greedy.value, dp.value - 1e-9);
}

TEST(Knapsack, GreedyRespectsCardinality) {
  const Problem p = paper_items(1000, 3);
  const Solution s = solve_greedy(p);
  EXPECT_LE(s.items_used, 3);
}

TEST(Knapsack, DeterministicAcrossCalls) {
  const Problem p = paper_items(53, 10);
  const Solution a = solve_dp(p);
  const Solution b = solve_dp(p);
  EXPECT_EQ(a.counts, b.counts);
}

TEST(KnapsackFamily, EveryPrefixMatchesSolveDpExactly) {
  // family[k-1] must be *bit-identical* to an independent solve with
  // max_items = k — the contract sim::performance_vector relies on.
  for (const int r : {4, 11, 23, 53, 77, 110}) {
    const Problem p = paper_items(r, 10);
    const std::vector<Solution> family = solve_dp_family(p);
    ASSERT_EQ(family.size(), 10u) << "R=" << r;
    for (Count k = 1; k <= 10; ++k) {
      Problem capped = p;
      capped.max_items = k;
      const Solution direct = solve_dp(capped);
      const Solution& fam = family[static_cast<std::size_t>(k) - 1];
      EXPECT_EQ(fam.counts, direct.counts) << "R=" << r << " k=" << k;
      EXPECT_EQ(fam.value, direct.value) << "R=" << r << " k=" << k;
      EXPECT_EQ(fam.weight_used, direct.weight_used) << "R=" << r << " k=" << k;
      EXPECT_EQ(fam.items_used, direct.items_used) << "R=" << r << " k=" << k;
    }
  }
}

TEST(KnapsackFamily, RandomInstancesMatchPerCapSolves) {
  Rng rng(4096);
  for (int trial = 0; trial < 60; ++trial) {
    Problem p;
    const int kinds = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < kinds; ++i)
      p.items.push_back(Item{static_cast<int>(rng.uniform_int(1, 9)),
                             rng.uniform(0.0, 2.0)});
    p.capacity = static_cast<int>(rng.uniform_int(0, 30));
    p.max_items = rng.uniform_int(1, 8);
    const std::vector<Solution> family = solve_dp_family(p);
    ASSERT_EQ(family.size(), static_cast<std::size_t>(p.max_items))
        << "trial " << trial;
    for (Count k = 1; k <= p.max_items; ++k) {
      Problem capped = p;
      capped.max_items = k;
      const Solution direct = solve_dp(capped);
      const Solution& fam = family[static_cast<std::size_t>(k) - 1];
      EXPECT_EQ(fam.counts, direct.counts) << "trial " << trial << " k=" << k;
      EXPECT_EQ(fam.value, direct.value) << "trial " << trial << " k=" << k;
    }
  }
}

TEST(KnapsackFamily, FamilyValuesAreMonotoneInTheCap) {
  // Relaxing the cardinality cap can only help (the feasible set grows).
  const Problem p = paper_items(53, 10);
  const std::vector<Solution> family = solve_dp_family(p);
  for (std::size_t k = 1; k < family.size(); ++k)
    EXPECT_GE(family[k].value, family[k - 1].value) << "k=" << k + 1;
}

}  // namespace
}  // namespace oagrid::knapsack
