#include "fault/failure.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "fault/checkpoint.hpp"

namespace oagrid::fault {
namespace {

TEST(FailureModel, DefaultIsInactive) {
  const FailureModel model;
  EXPECT_EQ(model.cluster_count(), 0);
  EXPECT_FALSE(model.active());

  const FailureModel sized(3);
  EXPECT_EQ(sized.cluster_count(), 3);
  EXPECT_FALSE(sized.active());
  for (ClusterId c = 0; c < 3; ++c) EXPECT_FALSE(sized.cluster_active(c));
}

TEST(FailureModel, ProcessesActivatePerCluster) {
  FailureModel model(3);
  model.set_exponential(1, 1000.0, 50.0);
  EXPECT_TRUE(model.active());
  EXPECT_FALSE(model.cluster_active(0));
  EXPECT_TRUE(model.cluster_active(1));
  EXPECT_FALSE(model.cluster_active(2));
  EXPECT_EQ(model.process(1).kind, ProcessKind::kExponential);
  EXPECT_EQ(model.process(1).mtbf, 1000.0);
  EXPECT_EQ(model.process(1).mttr, 50.0);

  model.add_outage(2, 100.0, 10.0);
  EXPECT_TRUE(model.cluster_active(2));
  EXPECT_EQ(model.process(2).kind, ProcessKind::kNone);
}

TEST(FailureModel, ValidationErrors) {
  EXPECT_THROW(FailureModel(-1), std::invalid_argument);
  FailureModel model(2);
  EXPECT_THROW(model.set_exponential(0, -1.0, 50.0), std::invalid_argument);
  EXPECT_THROW(model.set_exponential(0, 1000.0, -1.0), std::invalid_argument);
  EXPECT_THROW(model.set_weibull(0, 0.0, 1000.0, 50.0), std::invalid_argument);
  EXPECT_THROW(model.set_exponential(2, 1000.0, 50.0), std::invalid_argument);
  EXPECT_THROW(model.add_outage(0, -1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(model.add_outage(0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)model.process(5), std::invalid_argument);
}

TEST(FailureModel, OutagesKeptSortedByStart) {
  FailureModel model(1);
  model.add_outage(0, 500.0, 10.0);
  model.add_outage(0, 100.0, 10.0);
  model.add_outage(0, 300.0, 10.0);
  const auto& outages = model.process(0).outages;
  ASSERT_EQ(outages.size(), 3u);
  EXPECT_EQ(outages[0].start, 100.0);
  EXPECT_EQ(outages[1].start, 300.0);
  EXPECT_EQ(outages[2].start, 500.0);
}

TEST(FailureModel, SteadyStateAvailability) {
  FailureModel model(3);
  model.set_exponential(0, 900.0, 100.0);
  model.set_down(1);
  EXPECT_DOUBLE_EQ(model.process(0).availability(), 0.9);
  EXPECT_EQ(model.process(1).availability(), 0.0);
  EXPECT_EQ(model.process(2).availability(), 1.0);
}

TEST(FailureModel, SignatureCoversParametersAndSeed) {
  FailureModel a(2);
  a.set_exponential(0, 1000.0, 50.0);
  FailureModel b(2);
  b.set_exponential(0, 1000.0, 50.0);
  EXPECT_EQ(a.signature(), b.signature());

  b.set_seed(99);
  EXPECT_NE(a.signature(), b.signature());
  b.set_seed(a.seed());
  EXPECT_EQ(a.signature(), b.signature());

  b.set_exponential(0, 1000.0, 51.0);
  EXPECT_NE(a.signature(), b.signature());

  FailureModel c(2);
  c.set_exponential(0, 1000.0, 50.0);
  c.add_outage(1, 10.0, 5.0);
  EXPECT_NE(a.signature(), c.signature());
}

TEST(RecoveryPolicy, NamesRoundTrip) {
  EXPECT_EQ(recovery_policy_from("wait"), RecoveryPolicy::kWaitForRepair);
  EXPECT_EQ(recovery_policy_from("reschedule"),
            RecoveryPolicy::kRescheduleInCluster);
  EXPECT_EQ(recovery_policy_from("migrate"),
            RecoveryPolicy::kMigrateWithState);
  EXPECT_THROW((void)recovery_policy_from("bogus"), std::invalid_argument);
  EXPECT_EQ(recovery_policy_from(to_string(RecoveryPolicy::kWaitForRepair)),
            RecoveryPolicy::kWaitForRepair);
  EXPECT_EQ(
      recovery_policy_from(to_string(RecoveryPolicy::kRescheduleInCluster)),
      RecoveryPolicy::kRescheduleInCluster);
  EXPECT_EQ(recovery_policy_from(to_string(RecoveryPolicy::kMigrateWithState)),
            RecoveryPolicy::kMigrateWithState);
}

TEST(OutageStream, InactiveStreamYieldsNothing) {
  const FailureModel model(2);
  OutageStream stream(model, 0, 0);
  EXPECT_FALSE(stream.next(0.0).has_value());

  OutageStream defaulted;
  EXPECT_FALSE(defaulted.next(0.0).has_value());
}

TEST(OutageStream, DeterministicInSeedClusterAndUnit) {
  FailureModel model(2);
  model.set_exponential(0, 5000.0, 200.0);
  model.set_exponential(1, 5000.0, 200.0);

  const auto draw = [&](ClusterId cluster, int unit) {
    OutageStream stream(model, cluster, unit);
    std::vector<Outage> outages;
    Seconds t = 0.0;
    for (int i = 0; i < 8; ++i) {
      const auto o = stream.next(t);
      if (!o) break;
      outages.push_back(*o);
      t = o->start + o->duration;
    }
    return outages;
  };

  const auto first = draw(0, 0);
  const auto again = draw(0, 0);
  ASSERT_EQ(first.size(), again.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].start, again[i].start);
    EXPECT_EQ(first[i].duration, again[i].duration);
  }

  // Different unit / different cluster -> independent streams.
  const auto other_unit = draw(0, 1);
  const auto other_cluster = draw(1, 0);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(other_unit.empty());
  EXPECT_NE(first[0].start, other_unit[0].start);
  EXPECT_NE(first[0].start, other_cluster[0].start);
}

TEST(OutageStream, TraceOutagesSharedByAllUnits) {
  FailureModel model(1);
  model.add_outage(0, 1000.0, 60.0);
  model.add_outage(0, 5000.0, 120.0);
  for (const int unit : {0, 1, 7}) {
    OutageStream stream(model, 0, unit);
    const auto first = stream.next(0.0);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->start, 1000.0);
    EXPECT_EQ(first->duration, 60.0);
    const auto second = stream.next(first->start + first->duration);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->start, 5000.0);
  }
}

TEST(OutageStream, WindowsStartingInThePastAreSkipped) {
  FailureModel model(1);
  model.add_outage(0, 1000.0, 60.0);
  model.add_outage(0, 5000.0, 120.0);
  OutageStream stream(model, 0, 0);
  const auto o = stream.next(2000.0);  // the 1000 s window already passed
  ASSERT_TRUE(o.has_value());
  EXPECT_EQ(o->start, 5000.0);
}

TEST(OutageStream, PermanentDownClampsToQueryTime) {
  FailureModel model(1);
  model.set_down(0);
  OutageStream stream(model, 0, 0);
  const auto o = stream.next(700.0);
  ASSERT_TRUE(o.has_value());
  EXPECT_EQ(o->start, 700.0);
  EXPECT_GE(o->duration, kInfiniteTime);
}

TEST(AvailabilityTracker, ExactFractionsForTraceWindows) {
  FailureModel model(1);
  model.add_outage(0, 100.0, 50.0);  // down over [100, 150)
  AvailabilityTracker tracker(model, 0, 0);
  EXPECT_EQ(tracker.down_fraction(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.down_fraction(100.0, 200.0), 0.5);
  EXPECT_EQ(tracker.down_fraction(200.0, 300.0), 0.0);
}

TEST(AvailabilityTracker, PermanentlyDownIsAlwaysDown) {
  FailureModel model(1);
  model.set_down(0);
  AvailabilityTracker tracker(model, 0, 0);
  EXPECT_DOUBLE_EQ(tracker.down_fraction(0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(tracker.down_fraction(1e6, 1e6 + 10.0), 1.0);
}

TEST(AvailabilityTracker, InactiveStreamIsAlwaysUp) {
  const FailureModel model(1);
  AvailabilityTracker tracker(model, 0, 0);
  EXPECT_EQ(tracker.down_fraction(0.0, 1e9), 0.0);
}

TEST(Checkpoint, YoungDalyInterval) {
  EXPECT_DOUBLE_EQ(young_daly_interval(20000.0, 10.0),
                   std::sqrt(2.0 * 10.0 * 20000.0));
  EXPECT_EQ(young_daly_interval(0.0, 10.0), kUnavailableTime);
  EXPECT_EQ(young_daly_interval(-5.0, 10.0), kUnavailableTime);
  EXPECT_EQ(young_daly_interval(20000.0, 0.0), 0.0);
}

TEST(Checkpoint, OptimalMonthsClampsToRange) {
  // Interval sqrt(2*50*10000) = 1000 s -> 2 months of 500 s.
  EXPECT_EQ(optimal_checkpoint_months(500.0, 50.0, 10000.0, 12), 2);
  // Free checkpoints -> every month.
  EXPECT_EQ(optimal_checkpoint_months(500.0, 0.0, 10000.0, 12), 1);
  // Huge interval clamps at max_months.
  EXPECT_EQ(optimal_checkpoint_months(1.0, 1e9, 1e12, 12), 12);
}

TEST(Checkpoint, ExpectedMakespanShapes) {
  FailureProcess none;
  EXPECT_EQ(expected_makespan(1234.5, none, 100.0), 1234.5);  // exact

  FailureProcess down;
  down.kind = ProcessKind::kDown;
  EXPECT_EQ(expected_makespan(1234.5, down, 100.0), kUnavailableTime);

  FailureProcess exp;
  exp.kind = ProcessKind::kExponential;
  exp.mtbf = 10000.0;
  exp.mttr = 500.0;
  // clean * (1 + (mttr + period/2) / mtbf)
  EXPECT_DOUBLE_EQ(expected_makespan(1000.0, exp, 200.0),
                   1000.0 * (1.0 + (500.0 + 100.0) / 10000.0));
  // Longer checkpoint period -> more redone work expected.
  EXPECT_GT(expected_makespan(1000.0, exp, 2000.0),
            expected_makespan(1000.0, exp, 200.0));
}

TEST(FaultStats, MergeAccumulates) {
  FaultStats a;
  a.outages = 2;
  a.kills = 1;
  a.rewound_months = 3;
  a.downtime_seconds = 10.0;
  a.lost_seconds = 5.0;
  FaultStats b;
  b.outages = 1;
  b.lost_seconds = 2.5;
  a.merge(b);
  EXPECT_EQ(a.outages, 3);
  EXPECT_EQ(a.kills, 1);
  EXPECT_EQ(a.rewound_months, 3);
  EXPECT_EQ(a.downtime_seconds, 10.0);
  EXPECT_EQ(a.lost_seconds, 7.5);
}

}  // namespace
}  // namespace oagrid::fault
