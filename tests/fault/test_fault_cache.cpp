#include <gtest/gtest.h>

#include <vector>

#include "fault/failure.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/eval_cache.hpp"

namespace oagrid::sim {
namespace {

using appmodel::Ensemble;

const Ensemble kEnsemble{5, 18};

std::vector<MonthIndex> months_of(const Ensemble& e) {
  return std::vector<MonthIndex>(static_cast<std::size_t>(e.scenarios),
                                 static_cast<MonthIndex>(e.months));
}

TEST(FaultCache, KeyFaultSigZeroWheneverInactive) {
  const auto cluster = platform::make_builtin_cluster(1, 30);
  const auto schedule = sched::knapsack_grouping(cluster, kEnsemble);

  // No model at all.
  EXPECT_EQ(make_eval_key(cluster, schedule, months_of(kEnsemble)).fault_sig,
            0u);

  // Model attached but with no process anywhere: still the clean key.
  const fault::FailureModel inactive(1);
  SimOptions gated;
  gated.fault.model = &inactive;
  const EvalKey gated_key =
      make_eval_key(cluster, schedule, months_of(kEnsemble), gated);
  EXPECT_EQ(gated_key.fault_sig, 0u);
  EXPECT_EQ(gated_key, make_eval_key(cluster, schedule, months_of(kEnsemble)));
}

TEST(FaultCache, KeyFaultSigCoversInjectionParameters) {
  const auto cluster = platform::make_builtin_cluster(1, 30);
  const auto schedule = sched::knapsack_grouping(cluster, kEnsemble);
  const auto model =
      fault::FailureModel::uniform_exponential(1, 40000.0, 2000.0, 7);

  SimOptions options;
  options.fault.model = &model;
  const EvalKey base =
      make_eval_key(cluster, schedule, months_of(kEnsemble), options);
  EXPECT_NE(base.fault_sig, 0u);

  // Recovery policy, cadence, staging cost and the model seed all separate
  // cache entries.
  SimOptions recovery = options;
  recovery.fault.recovery = fault::RecoveryPolicy::kWaitForRepair;
  EXPECT_NE(make_eval_key(cluster, schedule, months_of(kEnsemble), recovery)
                .fault_sig,
            base.fault_sig);

  SimOptions cadence = options;
  cadence.fault.checkpoint_months = 6;
  EXPECT_NE(make_eval_key(cluster, schedule, months_of(kEnsemble), cadence)
                .fault_sig,
            base.fault_sig);

  SimOptions staging = options;
  staging.fault.migrate_staging = 300.0;
  EXPECT_NE(make_eval_key(cluster, schedule, months_of(kEnsemble), staging)
                .fault_sig,
            base.fault_sig);

  auto reseeded = model;
  reseeded.set_seed(8);
  SimOptions seeded = options;
  seeded.fault.model = &reseeded;
  EXPECT_NE(make_eval_key(cluster, schedule, months_of(kEnsemble), seeded)
                .fault_sig,
            base.fault_sig);

  // Identical injection -> identical key (the memo still works).
  EXPECT_EQ(make_eval_key(cluster, schedule, months_of(kEnsemble), options),
            base);
}

TEST(FaultCache, FailureRunsNeverPoisonCleanEntries) {
  // The regression the eval cache must never re-grow: a failure-injected
  // makespan served for a clean query (or vice versa) because the key
  // ignored the injection.
  const auto cluster = platform::make_builtin_cluster(1, 30);
  const auto schedule = sched::knapsack_grouping(cluster, kEnsemble);
  const auto model =
      fault::FailureModel::uniform_exponential(1, 20000.0, 2000.0, 3);

  eval_cache().clear();
  eval_cache().reset_stats();

  const Seconds clean = cached_makespan(cluster, schedule, kEnsemble);

  SimOptions injected;
  injected.fault.model = &model;
  const Seconds faulty =
      cached_makespan(cluster, schedule, kEnsemble, injected);
  ASSERT_NE(faulty, clean);  // this workload does get hit by failures

  // Re-asking the clean question must return the clean answer, byte for
  // byte, even though the failure run populated the cache in between.
  EXPECT_EQ(cached_makespan(cluster, schedule, kEnsemble), clean);
  // And the failure question keeps its own entry.
  EXPECT_EQ(cached_makespan(cluster, schedule, kEnsemble, injected), faulty);

  const EvalCacheStats stats = eval_cache().stats();
  EXPECT_EQ(stats.hits, 2u);    // one clean re-ask, one faulty re-ask
  EXPECT_EQ(stats.misses, 2u);  // the two distinct first questions
}

TEST(FaultCache, CachedMakespanMatchesDirectSimulationUnderInjection) {
  const auto cluster = platform::make_builtin_cluster(1, 30);
  const auto schedule = sched::knapsack_grouping(cluster, kEnsemble);
  const auto model =
      fault::FailureModel::uniform_exponential(1, 20000.0, 2000.0, 3);

  SimOptions injected;
  injected.fault.model = &model;
  eval_cache().clear();

  const Seconds via_cache =
      cached_makespan(cluster, schedule, kEnsemble, injected);
  const Seconds direct =
      simulate_ensemble(cluster, schedule, kEnsemble, injected).makespan;
  EXPECT_EQ(via_cache, direct);
}

}  // namespace
}  // namespace oagrid::sim
