#include "fault/parser.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

namespace oagrid::fault {
namespace {

TEST(FaultParser, ParsesEveryDirective) {
  const FailureModel model = parse_failures_string(
      "# comment line\n"
      "failures 4\n"
      "seed 42\n"
      "mtbf 0 86400 3600\n"
      "weibull 1 0.7 43200 1800  # infant mortality\n"
      "outage 2 1000 500\n"
      "outage 2 9000 250\n"
      "down 3\n");
  EXPECT_EQ(model.cluster_count(), 4);
  EXPECT_EQ(model.seed(), 42u);
  EXPECT_EQ(model.process(0).kind, ProcessKind::kExponential);
  EXPECT_EQ(model.process(0).mtbf, 86400.0);
  EXPECT_EQ(model.process(0).mttr, 3600.0);
  EXPECT_EQ(model.process(1).kind, ProcessKind::kWeibull);
  EXPECT_EQ(model.process(1).shape, 0.7);
  ASSERT_EQ(model.process(2).outages.size(), 2u);
  EXPECT_EQ(model.process(2).outages[0].start, 1000.0);
  EXPECT_EQ(model.process(2).outages[0].duration, 500.0);
  EXPECT_EQ(model.process(3).kind, ProcessKind::kDown);
}

TEST(FaultParser, WriteParseRoundTripsExactly) {
  FailureModel model(3);
  model.set_seed(1234567890123ull);
  model.set_exponential(0, 86400.125, 3600.0625);
  model.set_weibull(1, 0.712345678901234, 43210.9876543210987, 1813.5);
  model.add_outage(1, 0.1234567890123456, 7.5);
  model.set_down(2);
  model.add_outage(2, 100.0, 0.000244140625);

  std::ostringstream out;
  write_failures(out, model);
  const FailureModel reparsed = parse_failures_string(out.str());

  // Exact double round trip: the 64-bit content signature covers every
  // parameter, outage window and the seed.
  EXPECT_EQ(model.signature(), reparsed.signature());
  EXPECT_EQ(reparsed.process(1).mtbf, 43210.9876543210987);
  EXPECT_EQ(reparsed.process(1).outages[0].start, 0.1234567890123456);

  // And the writer is a fixed point: write(parse(write(m))) == write(m).
  std::ostringstream again;
  write_failures(again, reparsed);
  EXPECT_EQ(out.str(), again.str());
}

std::string message_of(const std::string& text) {
  try {
    (void)parse_failures_string(text);
  } catch (const std::invalid_argument& e) {
    return std::string(e.what());
  }
  return std::string("no error");
}

TEST(FaultParser, ErrorsCarryLineNumbers) {
  // Directive before the header.
  EXPECT_NE(message_of("mtbf 0 100 10\n").find("failures:1: "), std::string::npos);
  // Unknown directive.
  EXPECT_NE(message_of("failures 2\nbogus 1 2\n").find("failures:2: "),
            std::string::npos);
  EXPECT_NE(message_of("failures 2\nbogus 1 2\n").find("bogus"),
            std::string::npos);
  // Duplicate header.
  EXPECT_NE(message_of("failures 2\nfailures 2\n").find("failures:2: "),
            std::string::npos);
  // Bad cluster id.
  EXPECT_NE(message_of("failures 2\nmtbf 5 100 10\n").find("failures:2: "),
            std::string::npos);
  // A blank/comment line still advances the line counter.
  EXPECT_NE(
      message_of("failures 2\n# comment\n\nmtbf 0 -100 10\n")
          .find("failures:4: "),
      std::string::npos);
}

TEST(FaultParser, RejectsNegativeMtbf) {
  const std::string message = message_of("failures 1\nmtbf 0 -86400 3600\n");
  EXPECT_NE(message.find("failures:2: "), std::string::npos);
  EXPECT_NE(message.find("positive MTBF"), std::string::npos);
  EXPECT_NE(message_of("failures 1\nweibull 0 0.7 -1 10\n").find("MTBF"),
            std::string::npos);
  EXPECT_NE(message_of("failures 1\nmtbf 0 100 -1\n").find("MTTR"),
            std::string::npos);
}

TEST(FaultParser, RejectsTruncatedLines) {
  // mtbf missing the MTTR field.
  const std::string message = message_of("failures 1\nmtbf 0 86400\n");
  EXPECT_NE(message.find("failures:2: "), std::string::npos);
  EXPECT_NE(message.find("MTTR"), std::string::npos);
  // outage missing the duration.
  EXPECT_NE(message_of("failures 1\noutage 0 100\n").find("failures:2: "),
            std::string::npos);
  // weibull missing everything after the cluster.
  EXPECT_NE(message_of("failures 1\nweibull 0\n").find("failures:2: "),
            std::string::npos);
  // header missing the count.
  EXPECT_NE(message_of("failures\n").find("failures:1: "), std::string::npos);
}

TEST(FaultParser, RejectsOtherBadValues) {
  EXPECT_NE(message_of("failures 0\n").find("positive cluster count"),
            std::string::npos);
  EXPECT_NE(message_of("failures 1\noutage 0 -5 10\n").find("outage start"),
            std::string::npos);
  EXPECT_NE(message_of("failures 1\noutage 0 5 0\n").find("outage duration"),
            std::string::npos);
  EXPECT_NE(message_of("failures 1\nseed nope\n").find("seed"),
            std::string::npos);
}

TEST(FaultParser, RequiresHeader) {
  EXPECT_NE(message_of("").find("no 'failures"), std::string::npos);
  EXPECT_NE(message_of("# only comments\n\n").find("no 'failures"),
            std::string::npos);
}

TEST(FaultParser, StreamOverloadMatchesStringOverload) {
  const std::string text = "failures 1\nmtbf 0 1000 100\n";
  std::istringstream in(text);
  EXPECT_EQ(parse_failures(in).signature(),
            parse_failures_string(text).signature());
}

}  // namespace
}  // namespace oagrid::fault
