#include <gtest/gtest.h>

#include <algorithm>

#include "fault/checkpoint.hpp"
#include "fault/failure.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/fluid_grid.hpp"
#include "sim/grid_sim.hpp"

namespace oagrid::sim {
namespace {

using appmodel::Ensemble;

const Ensemble kEnsemble{6, 24};

sim::SimOptions fault_options(const fault::FailureModel& model,
                              fault::RecoveryPolicy recovery =
                                  fault::RecoveryPolicy::kRescheduleInCluster,
                              MonthIndex checkpoint_months = 1) {
  SimOptions options;
  options.fault.model = &model;
  options.fault.cluster = 0;
  options.fault.recovery = recovery;
  options.fault.checkpoint_months = checkpoint_months;
  return options;
}

// --- the acceptance-criteria gate: a zero-failure model is bit-identical ---

TEST(FaultSim, InactiveModelIsBitIdenticalOnEnsemble) {
  const auto cluster = platform::make_builtin_cluster(1, 34);
  const auto schedule = sched::knapsack_grouping(cluster, kEnsemble);
  const SimResult clean = simulate_ensemble(cluster, schedule, kEnsemble);

  const fault::FailureModel inactive(1);  // present but no process anywhere
  const SimResult gated =
      simulate_ensemble(cluster, schedule, kEnsemble, fault_options(inactive));

  EXPECT_EQ(gated.makespan, clean.makespan);  // exact, not NEAR
  EXPECT_EQ(gated.main_phase_end, clean.main_phase_end);
  EXPECT_EQ(gated.mains_executed, clean.mains_executed);
  EXPECT_EQ(gated.posts_executed, clean.posts_executed);
  EXPECT_EQ(gated.events, clean.events);
  EXPECT_EQ(gated.group_utilization, clean.group_utilization);
  EXPECT_EQ(gated.fault.outages, 0);
  EXPECT_EQ(gated.fault.kills, 0);
  EXPECT_EQ(gated.fault.lost_seconds, 0.0);
}

TEST(FaultSim, InactiveModelIsBitIdenticalOnGrid) {
  const auto grid = platform::make_builtin_grid(25).prefix(3);
  const GridSimResult clean =
      simulate_grid(grid, kEnsemble, sched::Heuristic::kKnapsack);

  GridFaultOptions fault;
  fault.model = fault::FailureModel(grid.cluster_count());
  const GridSimResult gated = simulate_grid(
      grid, kEnsemble, sched::Heuristic::kKnapsack, 1, {}, fault);

  EXPECT_EQ(gated.makespan, clean.makespan);
  ASSERT_EQ(gated.cluster_makespans.size(), clean.cluster_makespans.size());
  for (std::size_t c = 0; c < clean.cluster_makespans.size(); ++c)
    EXPECT_EQ(gated.cluster_makespans[c], clean.cluster_makespans[c]);
  EXPECT_EQ(gated.repartition.dags_per_cluster,
            clean.repartition.dags_per_cluster);
  EXPECT_EQ(gated.fault.outages, 0);
}

TEST(FaultSim, InactiveModelIsBitIdenticalOnDynamicGrid) {
  const auto grid = platform::make_builtin_grid(25).prefix(3);
  DriftModel drift;
  drift.sigma = 0.08;
  const DynamicGridResult clean =
      simulate_dynamic_grid(grid, kEnsemble, GridPolicy::kStatic, drift);

  DriftModel gated_drift = drift;
  gated_drift.failures = fault::FailureModel(grid.cluster_count());
  const DynamicGridResult gated =
      simulate_dynamic_grid(grid, kEnsemble, GridPolicy::kStatic, gated_drift);

  EXPECT_EQ(gated.makespan, clean.makespan);
  EXPECT_EQ(gated.epochs, clean.epochs);
  ASSERT_EQ(gated.cluster_finish.size(), clean.cluster_finish.size());
  for (std::size_t c = 0; c < clean.cluster_finish.size(); ++c)
    EXPECT_EQ(gated.cluster_finish[c], clean.cluster_finish[c]);
}

// --- determinism of injected runs ------------------------------------------

TEST(FaultSim, InjectedRunIsDeterministicAcrossRuns) {
  const auto cluster = platform::make_builtin_cluster(1, 34);
  const auto schedule = sched::knapsack_grouping(cluster, kEnsemble);
  const auto model = fault::FailureModel::uniform_exponential(1, 40000.0,
                                                              2000.0, 7);

  const SimResult a =
      simulate_ensemble(cluster, schedule, kEnsemble, fault_options(model));
  const SimResult b =
      simulate_ensemble(cluster, schedule, kEnsemble, fault_options(model));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fault.outages, b.fault.outages);
  EXPECT_EQ(a.fault.kills, b.fault.kills);
  EXPECT_EQ(a.fault.lost_seconds, b.fault.lost_seconds);

  // A different seed sees different outages.
  auto reseeded = model;
  reseeded.set_seed(8);
  const SimResult c =
      simulate_ensemble(cluster, schedule, kEnsemble, fault_options(reseeded));
  EXPECT_NE(a.makespan, c.makespan);
}

TEST(FaultSim, GridInjectionIsThreadCountInvariant) {
  const auto grid = platform::make_builtin_grid(25).prefix(3);
  GridFaultOptions fault;
  fault.model = fault::FailureModel::uniform_exponential(grid.cluster_count(),
                                                         60000.0, 3000.0, 11);
  const GridSimResult serial = simulate_grid(
      grid, kEnsemble, sched::Heuristic::kKnapsack, 1, {}, fault);
  const GridSimResult parallel = simulate_grid(
      grid, kEnsemble, sched::Heuristic::kKnapsack, 4, {}, fault);

  EXPECT_EQ(serial.makespan, parallel.makespan);
  ASSERT_EQ(serial.cluster_makespans.size(), parallel.cluster_makespans.size());
  for (std::size_t c = 0; c < serial.cluster_makespans.size(); ++c)
    EXPECT_EQ(serial.cluster_makespans[c], parallel.cluster_makespans[c]);
  EXPECT_EQ(serial.fault.kills, parallel.fault.kills);
  EXPECT_EQ(serial.fault.lost_seconds, parallel.fault.lost_seconds);
}

// --- outage semantics -------------------------------------------------------

TEST(FaultSim, TraceOutageKillsInFlightMonths) {
  const auto cluster = platform::make_builtin_cluster(1, 34);
  const auto schedule = sched::knapsack_grouping(cluster, kEnsemble);
  const SimResult clean = simulate_ensemble(cluster, schedule, kEnsemble);

  // One cluster-wide window in the middle of the run hits every group.
  fault::FailureModel model(1);
  model.add_outage(0, clean.makespan / 2.0, 1800.0);
  const SimResult hit =
      simulate_ensemble(cluster, schedule, kEnsemble, fault_options(model));

  EXPECT_GT(hit.fault.outages, 0);
  EXPECT_GT(hit.fault.kills, 0);
  EXPECT_GT(hit.fault.lost_seconds, 0.0);
  EXPECT_GT(hit.fault.downtime_seconds, 0.0);
  EXPECT_GT(hit.makespan, clean.makespan);
  // Work conservation: every month still completes exactly once.
  EXPECT_EQ(hit.mains_executed, clean.mains_executed);
  EXPECT_EQ(hit.posts_executed, clean.posts_executed);
}

TEST(FaultSim, OutageAfterCompletionChangesNothing) {
  const auto cluster = platform::make_builtin_cluster(1, 34);
  const auto schedule = sched::knapsack_grouping(cluster, kEnsemble);
  const SimResult clean = simulate_ensemble(cluster, schedule, kEnsemble);

  fault::FailureModel model(1);
  model.add_outage(0, clean.makespan + 1000.0, 3600.0);
  const SimResult after =
      simulate_ensemble(cluster, schedule, kEnsemble, fault_options(model));
  EXPECT_EQ(after.makespan, clean.makespan);
  EXPECT_EQ(after.fault.kills, 0);
}

TEST(FaultSim, CheckpointCadenceControlsRewind) {
  const auto cluster = platform::make_builtin_cluster(1, 34);
  const auto schedule = sched::knapsack_grouping(cluster, kEnsemble);
  const SimResult clean = simulate_ensemble(cluster, schedule, kEnsemble);

  fault::FailureModel model(1);
  model.add_outage(0, clean.makespan / 2.0, 1800.0);

  // Monthly restart files (the paper's world): nothing completed is lost.
  const SimResult monthly = simulate_ensemble(
      cluster, schedule, kEnsemble,
      fault_options(model, fault::RecoveryPolicy::kRescheduleInCluster, 1));
  EXPECT_EQ(monthly.fault.rewound_months, 0);

  // Sparse checkpoints: killed scenarios roll back to the last multiple of 6.
  const SimResult sparse = simulate_ensemble(
      cluster, schedule, kEnsemble,
      fault_options(model, fault::RecoveryPolicy::kRescheduleInCluster, 6));
  EXPECT_GT(sparse.fault.rewound_months, 0);
  EXPECT_GE(sparse.makespan, monthly.makespan);
  EXPECT_GT(sparse.fault.lost_seconds, monthly.fault.lost_seconds);
}

TEST(FaultSim, RecoveryPoliciesAllCompleteTheWorkload) {
  const auto cluster = platform::make_builtin_cluster(1, 34);
  const auto schedule = sched::knapsack_grouping(cluster, kEnsemble);
  const SimResult clean = simulate_ensemble(cluster, schedule, kEnsemble);
  const auto model =
      fault::FailureModel::uniform_exponential(1, 30000.0, 1500.0, 3);

  for (const fault::RecoveryPolicy policy :
       {fault::RecoveryPolicy::kWaitForRepair,
        fault::RecoveryPolicy::kRescheduleInCluster,
        fault::RecoveryPolicy::kMigrateWithState}) {
    SimOptions options = fault_options(model, policy);
    options.fault.migrate_staging =
        policy == fault::RecoveryPolicy::kMigrateWithState ? 120.0 : 0.0;
    const SimResult r = simulate_ensemble(cluster, schedule, kEnsemble, options);
    EXPECT_EQ(r.mains_executed, clean.mains_executed)
        << fault::to_string(policy);
    EXPECT_EQ(r.posts_executed, clean.posts_executed)
        << fault::to_string(policy);
    EXPECT_GT(r.fault.kills, 0) << fault::to_string(policy);
    EXPECT_GT(r.makespan, clean.makespan) << fault::to_string(policy);
    EXPECT_LT(r.makespan, fault::kUnavailableTime) << fault::to_string(policy);
  }
}

TEST(FaultSim, MigrateStagingIsChargedOnTopOfReschedule) {
  const auto cluster = platform::make_builtin_cluster(1, 34);
  const auto schedule = sched::knapsack_grouping(cluster, kEnsemble);
  const auto model =
      fault::FailureModel::uniform_exponential(1, 30000.0, 1500.0, 3);

  SimOptions migrate =
      fault_options(model, fault::RecoveryPolicy::kMigrateWithState);
  migrate.fault.migrate_staging = 600.0;
  SimOptions free_migrate =
      fault_options(model, fault::RecoveryPolicy::kMigrateWithState);
  free_migrate.fault.migrate_staging = 0.0;

  const SimResult paid = simulate_ensemble(cluster, schedule, kEnsemble, migrate);
  const SimResult free =
      simulate_ensemble(cluster, schedule, kEnsemble, free_migrate);
  EXPECT_GE(paid.makespan, free.makespan);
}

TEST(FaultSim, PermanentlyDownClusterNeverFinishes) {
  const auto cluster = platform::make_builtin_cluster(1, 34);
  const auto schedule = sched::knapsack_grouping(cluster, kEnsemble);
  fault::FailureModel model(1);
  model.set_down(0);
  const SimResult r =
      simulate_ensemble(cluster, schedule, kEnsemble, fault_options(model));
  EXPECT_EQ(r.makespan, fault::kUnavailableTime);
}

// --- grid-level placement under failures ------------------------------------

TEST(FaultSim, DeadClusterReceivesNoScenarios) {
  const auto grid = platform::make_builtin_grid(25).prefix(3);
  GridFaultOptions fault;
  fault.model = fault::FailureModel(grid.cluster_count());
  fault.model.set_down(1);
  const GridSimResult r = simulate_grid(
      grid, kEnsemble, sched::Heuristic::kKnapsack, 1, {}, fault);

  EXPECT_EQ(r.repartition.dags_per_cluster[1], 0);
  EXPECT_EQ(r.repartition.total_dags(), kEnsemble.scenarios);
  EXPECT_LT(r.makespan, fault::kUnavailableTime);
  EXPECT_EQ(r.cluster_makespans[1], 0.0);
}

TEST(FaultSim, UnreliableClusterIsChargedByPlacement) {
  const auto grid = platform::make_builtin_grid(25).prefix(2);
  const GridSimResult clean =
      simulate_grid(grid, Ensemble{10, 24}, sched::Heuristic::kKnapsack);

  // Make cluster 0 (the fastest) very unreliable: the expected-makespan
  // charge should shift work toward the reliable cluster 1.
  GridFaultOptions fault;
  fault.model = fault::FailureModel(grid.cluster_count());
  fault.model.set_exponential(0, 4000.0, 4000.0);
  const GridSimResult charged = simulate_grid(
      grid, Ensemble{10, 24}, sched::Heuristic::kKnapsack, 1, {}, fault);

  EXPECT_LE(charged.repartition.dags_per_cluster[0],
            clean.repartition.dags_per_cluster[0]);
  EXPECT_GE(charged.repartition.dags_per_cluster[1],
            clean.repartition.dags_per_cluster[1]);
  EXPECT_GT(charged.fault.outages, 0);
}

TEST(FaultSim, DynamicGridFailuresInflateMakespan) {
  const auto grid = platform::make_builtin_grid(25).prefix(3);
  DriftModel clean_drift;
  const DynamicGridResult clean =
      simulate_dynamic_grid(grid, kEnsemble, GridPolicy::kStatic, clean_drift);

  // A grid-wide maintenance window mid-run: every cluster loses an hour, so
  // whichever cluster is binding, the fluid drains strictly later.
  DriftModel drift;
  drift.failures = fault::FailureModel(grid.cluster_count());
  for (ClusterId c = 0; c < grid.cluster_count(); ++c)
    drift.failures.add_outage(c, clean.makespan / 2.0, 3600.0);
  const DynamicGridResult faulty =
      simulate_dynamic_grid(grid, kEnsemble, GridPolicy::kStatic, drift);
  EXPECT_GT(faulty.makespan, clean.makespan);

  // Same seed twice -> same fluid trajectory.
  const DynamicGridResult again =
      simulate_dynamic_grid(grid, kEnsemble, GridPolicy::kStatic, drift);
  EXPECT_EQ(faulty.makespan, again.makespan);
}

}  // namespace
}  // namespace oagrid::sim
