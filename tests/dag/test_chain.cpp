#include "dag/chain.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace oagrid::dag {
namespace {

Dag two_node_template() {
  // work(10) -> tail(1)
  Dag g;
  TaskSpec work;
  work.name = "work";
  work.ref_duration = 10;
  TaskSpec tail;
  tail.name = "tail";
  tail.ref_duration = 1;
  const NodeId w = g.add_task(work);
  const NodeId t = g.add_task(tail);
  g.add_edge(w, t);
  g.freeze();
  return g;
}

TEST(Chain, RequiresFrozenTemplate) {
  Dag g;
  g.add_task(TaskSpec{.name = "x", .ref_duration = 1});
  EXPECT_THROW(chain_of(g, 2, {}), std::invalid_argument);
}

TEST(Chain, RequiresPositiveInstances) {
  const Dag tmpl = two_node_template();
  EXPECT_THROW(chain_of(tmpl, 0, {}), std::invalid_argument);
}

TEST(Chain, RejectsOutOfRangeLinks) {
  const Dag tmpl = two_node_template();
  EXPECT_THROW(chain_of(tmpl, 2, {CrossLink{5, 0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(chain_of(tmpl, 2, {CrossLink{0, -1, 0.0}}), std::invalid_argument);
}

TEST(Chain, SingleInstanceEqualsTemplate) {
  const Dag tmpl = two_node_template();
  const ChainedDag chained = chain_of(tmpl, 1, {CrossLink{0, 0, 5.0}});
  EXPECT_EQ(chained.graph.node_count(), 2);
  EXPECT_EQ(chained.graph.edge_count(), 1u);  // no cross edges with 1 instance
  EXPECT_DOUBLE_EQ(chained.graph.critical_path_ref(), 11.0);
}

TEST(Chain, NodeAndEdgeCounts) {
  const Dag tmpl = two_node_template();
  const ChainedDag chained = chain_of(tmpl, 5, {CrossLink{0, 0, 120.0}});
  EXPECT_EQ(chained.graph.node_count(), 10);
  // 5 intra edges + 4 cross edges.
  EXPECT_EQ(chained.graph.edge_count(), 9u);
}

TEST(Chain, IndexMappingRoundTrips) {
  const Dag tmpl = two_node_template();
  const ChainedDag chained = chain_of(tmpl, 4, {CrossLink{0, 0, 0.0}});
  for (int m = 0; m < 4; ++m)
    for (NodeId v = 0; v < 2; ++v) {
      const NodeId id = chained.at(m, v);
      EXPECT_EQ(chained.instance_of(id), m);
      EXPECT_EQ(chained.template_node_of(id), v);
    }
  EXPECT_THROW((void)chained.at(4, 0), std::invalid_argument);
  EXPECT_THROW((void)chained.at(0, 2), std::invalid_argument);
}

TEST(Chain, NamesCarryInstanceSuffix) {
  const Dag tmpl = two_node_template();
  const ChainedDag chained = chain_of(tmpl, 2, {});
  EXPECT_EQ(chained.graph.task(chained.at(0, 0)).name, "work#0");
  EXPECT_EQ(chained.graph.task(chained.at(1, 1)).name, "tail#1");
}

TEST(Chain, CrossLinkCarriesDataVolume) {
  const Dag tmpl = two_node_template();
  const ChainedDag chained = chain_of(tmpl, 3, {CrossLink{0, 0, 120.0}});
  int cross_edges = 0;
  for (const Edge& e : chained.graph.edges())
    if (e.data_mb == 120.0) ++cross_edges;
  EXPECT_EQ(cross_edges, 2);
}

TEST(Chain, CriticalPathGrowsLinearlyWithWorkChain) {
  const Dag tmpl = two_node_template();
  // Chain through the work node: tail hangs off each instance.
  const ChainedDag chained = chain_of(tmpl, 10, {CrossLink{0, 0, 0.0}});
  // 10 x work (10 s) serialized + one trailing tail (1 s).
  EXPECT_DOUBLE_EQ(chained.graph.critical_path_ref(), 101.0);
}

TEST(Chain, ChainThroughTailSerializesEverything) {
  const Dag tmpl = two_node_template();
  const ChainedDag chained = chain_of(tmpl, 10, {CrossLink{1, 0, 0.0}});
  // tail also on the chain: 10 x (10 + 1).
  EXPECT_DOUBLE_EQ(chained.graph.critical_path_ref(), 110.0);
}

TEST(Chain, MultipleCrossLinks) {
  // Template: two independent nodes; both chained.
  Dag g;
  g.add_task(TaskSpec{.name = "u", .ref_duration = 3});
  g.add_task(TaskSpec{.name = "v", .ref_duration = 4});
  g.freeze();
  const ChainedDag chained =
      chain_of(g, 3, {CrossLink{0, 0, 0.0}, CrossLink{1, 1, 0.0}});
  EXPECT_EQ(chained.graph.edge_count(), 4u);
  EXPECT_DOUBLE_EQ(chained.graph.critical_path_ref(), 12.0);  // 3 x v
}

}  // namespace
}  // namespace oagrid::dag
