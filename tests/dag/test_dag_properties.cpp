/// \file test_dag_properties.cpp
/// \brief Randomized structural properties of the DAG substrate.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "dag/chain.hpp"
#include "dag/dag.hpp"

namespace oagrid::dag {
namespace {

/// Random DAG: edges only from lower to higher ids (guaranteed acyclic),
/// density controlled by `p`.
Dag random_dag(Rng& rng, int nodes, double p) {
  Dag g;
  for (int v = 0; v < nodes; ++v) {
    TaskSpec spec;
    spec.name = "t" + std::to_string(v);
    spec.ref_duration = rng.uniform(1.0, 100.0);
    if (rng.uniform() < 0.3) {
      spec.shape = TaskShape::kMoldable;
      spec.min_procs = 1 + static_cast<ProcCount>(rng.uniform_int(0, 3));
      spec.max_procs = spec.min_procs + static_cast<ProcCount>(rng.uniform_int(0, 8));
    }
    g.add_task(spec);
  }
  for (int a = 0; a < nodes; ++a)
    for (int b = a + 1; b < nodes; ++b)
      if (rng.uniform() < p) g.add_edge(a, b);
  g.freeze();
  return g;
}

TEST(DagProperties, TopologicalOrderIsAlwaysValid) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 40));
    const Dag g = random_dag(rng, n, rng.uniform(0.0, 0.4));
    const auto topo = g.topological_order();
    ASSERT_EQ(topo.size(), static_cast<std::size_t>(n));
    std::vector<int> pos(static_cast<std::size_t>(n));
    std::set<NodeId> seen;
    for (int i = 0; i < n; ++i) {
      pos[static_cast<std::size_t>(topo[static_cast<std::size_t>(i)])] = i;
      seen.insert(topo[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));  // a permutation
    for (const Edge& e : g.edges())
      EXPECT_LT(pos[static_cast<std::size_t>(e.from)],
                pos[static_cast<std::size_t>(e.to)]);
  }
}

TEST(DagProperties, CriticalPathBounds) {
  // max duration <= critical path <= sum of durations; and the CP equals the
  // longest path found by explicit DP over the topological order.
  Rng rng(202);
  for (int trial = 0; trial < 30; ++trial) {
    const Dag g = random_dag(rng, static_cast<int>(rng.uniform_int(1, 30)),
                             rng.uniform(0.0, 0.5));
    double longest_single = 0, total = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      longest_single = std::max(longest_single, g.task(v).ref_duration);
      total += g.task(v).ref_duration;
    }
    const Seconds cp = g.critical_path_ref();
    EXPECT_GE(cp, longest_single - 1e-9);
    EXPECT_LE(cp, total + 1e-9);
  }
}

TEST(DagProperties, LevelsMonotoneAlongEdges) {
  Rng rng(303);
  for (int trial = 0; trial < 20; ++trial) {
    const Dag g = random_dag(rng, static_cast<int>(rng.uniform_int(2, 35)),
                             rng.uniform(0.05, 0.4));
    const auto levels = g.levels();
    for (const Edge& e : g.edges())
      EXPECT_LT(levels[static_cast<std::size_t>(e.from)],
                levels[static_cast<std::size_t>(e.to)]);
  }
}

TEST(DagProperties, EntryExitPartitionConsistent) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    const Dag g = random_dag(rng, static_cast<int>(rng.uniform_int(1, 30)),
                             rng.uniform(0.0, 0.5));
    for (const NodeId v : g.entry_nodes())
      EXPECT_TRUE(g.predecessors(v).empty());
    for (const NodeId v : g.exit_nodes())
      EXPECT_TRUE(g.successors(v).empty());
    EXPECT_GE(g.entry_nodes().size(), 1u);
    EXPECT_GE(g.exit_nodes().size(), 1u);
  }
}

TEST(DagProperties, ChainStampingPreservesStructure) {
  Rng rng(505);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 10));
    const Dag tmpl = random_dag(rng, n, 0.3);
    const int copies = static_cast<int>(rng.uniform_int(1, 6));
    // Link a random exit to a random entry across instances.
    const auto exits = tmpl.exit_nodes();
    const auto entries = tmpl.entry_nodes();
    const CrossLink link{
        exits[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<long long>(exits.size()) - 1))],
        entries[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<long long>(entries.size()) - 1))],
        1.0};
    const ChainedDag chained = chain_of(tmpl, copies, {link});
    EXPECT_EQ(chained.graph.node_count(), n * copies);
    EXPECT_EQ(chained.graph.edge_count(),
              tmpl.edge_count() * static_cast<std::size_t>(copies) +
                  static_cast<std::size_t>(copies - 1));
    // The chained critical path grows at least linearly in the linked pair.
    EXPECT_GE(chained.graph.critical_path_ref(),
              tmpl.critical_path_ref() - 1e-9);
  }
}

TEST(DagProperties, WorkAreaAdditiveUnderChaining) {
  Rng rng(606);
  const Dag tmpl = random_dag(rng, 8, 0.25);
  const auto area_of = [](const Dag& g) {
    return g.work_area([&g](NodeId v) { return g.task(v).ref_duration; },
                       [](NodeId) { return 1; });
  };
  const ChainedDag chained = chain_of(tmpl, 5, {});
  EXPECT_NEAR(area_of(chained.graph), 5.0 * area_of(tmpl), 1e-6);
}

}  // namespace
}  // namespace oagrid::dag
