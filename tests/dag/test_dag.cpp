#include "dag/dag.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace oagrid::dag {
namespace {

TaskSpec rigid(const std::string& name, Seconds duration, ProcCount procs = 1) {
  TaskSpec spec;
  spec.name = name;
  spec.shape = TaskShape::kRigid;
  spec.ref_duration = duration;
  spec.procs = procs;
  return spec;
}

TaskSpec moldable(const std::string& name, Seconds duration, ProcCount lo,
                  ProcCount hi) {
  TaskSpec spec;
  spec.name = name;
  spec.shape = TaskShape::kMoldable;
  spec.ref_duration = duration;
  spec.min_procs = lo;
  spec.max_procs = hi;
  return spec;
}

Dag diamond() {
  // a -> {b, c} -> d
  Dag g;
  const NodeId a = g.add_task(rigid("a", 1));
  const NodeId b = g.add_task(rigid("b", 2));
  const NodeId c = g.add_task(rigid("c", 3));
  const NodeId d = g.add_task(rigid("d", 4));
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.freeze();
  return g;
}

TEST(Dag, RejectsMalformedTasks) {
  Dag g;
  TaskSpec negative = rigid("x", -1);
  EXPECT_THROW(g.add_task(negative), std::invalid_argument);
  TaskSpec zero_procs = rigid("x", 1, 0);
  EXPECT_THROW(g.add_task(zero_procs), std::invalid_argument);
  TaskSpec inverted = moldable("x", 1, 5, 3);
  EXPECT_THROW(g.add_task(inverted), std::invalid_argument);
}

TEST(Dag, RejectsBadEdges) {
  Dag g;
  const NodeId a = g.add_task(rigid("a", 1));
  const NodeId b = g.add_task(rigid("b", 1));
  EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);       // self loop
  EXPECT_THROW(g.add_edge(a, 5), std::out_of_range);           // unknown id
  EXPECT_THROW(g.add_edge(a, b, -1.0), std::invalid_argument); // negative data
  g.add_edge(a, b);
  EXPECT_THROW(g.add_edge(a, b), std::invalid_argument);       // duplicate
}

TEST(Dag, DetectsCycle) {
  Dag g;
  const NodeId a = g.add_task(rigid("a", 1));
  const NodeId b = g.add_task(rigid("b", 1));
  const NodeId c = g.add_task(rigid("c", 1));
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  EXPECT_THROW(g.freeze(), std::invalid_argument);
}

TEST(Dag, CycleErrorNamesATask) {
  Dag g;
  const NodeId a = g.add_task(rigid("alpha", 1));
  const NodeId b = g.add_task(rigid("beta", 1));
  g.add_edge(a, b);
  g.add_edge(b, a);
  try {
    g.freeze();
    FAIL() << "expected cycle detection";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what.find("alpha") != std::string::npos ||
                what.find("beta") != std::string::npos)
        << what;
  }
}

TEST(Dag, FrozenIsImmutable) {
  Dag g = diamond();
  EXPECT_THROW(g.add_task(rigid("late", 1)), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.freeze(), std::invalid_argument);
}

TEST(Dag, QueriesRequireFreeze) {
  Dag g;
  g.add_task(rigid("a", 1));
  EXPECT_THROW((void)g.topological_order(), std::logic_error);
  EXPECT_THROW((void)g.levels(), std::logic_error);
  EXPECT_THROW((void)g.critical_path_ref(), std::logic_error);
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const Dag g = diamond();
  const auto topo = g.topological_order();
  ASSERT_EQ(topo.size(), 4u);
  std::vector<int> position(4);
  for (int i = 0; i < 4; ++i) position[static_cast<std::size_t>(topo[static_cast<std::size_t>(i)])] = i;
  for (const Edge& e : g.edges())
    EXPECT_LT(position[static_cast<std::size_t>(e.from)],
              position[static_cast<std::size_t>(e.to)]);
}

TEST(Dag, LevelsAreHopDepth) {
  const Dag g = diamond();
  const auto levels = g.levels();
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], 1);
  EXPECT_EQ(levels[3], 2);
}

TEST(Dag, EntryAndExitNodes) {
  const Dag g = diamond();
  EXPECT_EQ(g.entry_nodes(), std::vector<NodeId>{0});
  EXPECT_EQ(g.exit_nodes(), std::vector<NodeId>{3});
}

TEST(Dag, PredecessorsAndSuccessors) {
  const Dag g = diamond();
  EXPECT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.predecessors(3).size(), 2u);
  EXPECT_EQ(g.predecessors(0).size(), 0u);
}

TEST(Dag, CriticalPathUsesLongestBranch) {
  const Dag g = diamond();
  // a(1) -> c(3) -> d(4) = 8 beats a -> b(2) -> d = 7.
  EXPECT_DOUBLE_EQ(g.critical_path_ref(), 8.0);
}

TEST(Dag, CriticalPathWithCustomDurations) {
  const Dag g = diamond();
  const Seconds cp = g.critical_path([](NodeId v) {
    return v == 1 ? 100.0 : 1.0;  // make b dominant
  });
  EXPECT_DOUBLE_EQ(cp, 102.0);
}

TEST(Dag, CriticalPathOfIndependentNodes) {
  Dag g;
  g.add_task(rigid("a", 5));
  g.add_task(rigid("b", 9));
  g.freeze();
  EXPECT_DOUBLE_EQ(g.critical_path_ref(), 9.0);
}

TEST(Dag, WorkAreaSumsDurationTimesProcs) {
  const Dag g = diamond();
  const double area = g.work_area(
      [&g](NodeId v) { return g.task(v).ref_duration; },
      [](NodeId) { return 2; });
  EXPECT_DOUBLE_EQ(area, (1 + 2 + 3 + 4) * 2.0);
}

TEST(Dag, FindByName) {
  const Dag g = diamond();
  EXPECT_EQ(g.find_by_name("c"), 2);
  EXPECT_EQ(g.find_by_name("missing"), kInvalidNode);
}

TEST(Dag, FindByNameThrowsOnAmbiguity) {
  Dag g;
  g.add_task(rigid("dup", 1));
  g.add_task(rigid("dup", 1));
  g.freeze();
  EXPECT_THROW((void)g.find_by_name("dup"), std::invalid_argument);
}

TEST(Dag, EmptyDagFreezes) {
  Dag g;
  g.freeze();
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_TRUE(g.topological_order().empty());
  EXPECT_DOUBLE_EQ(g.critical_path_ref(), 0.0);
}

}  // namespace
}  // namespace oagrid::dag
