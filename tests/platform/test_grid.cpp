#include "platform/grid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"
#include "platform/profiles.hpp"

namespace oagrid::platform {
namespace {

TEST(Grid, AddAndLookup) {
  Grid grid;
  EXPECT_EQ(grid.cluster_count(), 0);
  const ClusterId id = grid.add_cluster(Cluster("a", 10, 4, {5.0}, 1.0));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(grid.cluster(0).name(), "a");
  EXPECT_THROW((void)grid.cluster(1), std::invalid_argument);
  EXPECT_THROW((void)grid.cluster(-1), std::invalid_argument);
}

TEST(Grid, TotalResources) {
  Grid grid;
  grid.add_cluster(Cluster("a", 10, 4, {5.0}, 1.0));
  grid.add_cluster(Cluster("b", 25, 4, {5.0}, 1.0));
  EXPECT_EQ(grid.total_resources(), 35);
}

TEST(Grid, UniformResize) {
  const Grid grid = make_builtin_grid(64).with_uniform_resources(20);
  for (const auto& c : grid.clusters()) EXPECT_EQ(c.resources(), 20);
}

TEST(Grid, Prefix) {
  const Grid grid = make_builtin_grid(32);
  EXPECT_EQ(grid.prefix(2).cluster_count(), 2);
  EXPECT_EQ(grid.prefix(0).cluster_count(), 0);
  EXPECT_EQ(grid.prefix(2).cluster(1).name(), grid.cluster(1).name());
  EXPECT_THROW((void)grid.prefix(6), std::invalid_argument);
}

TEST(Grid, BuiltinGridHasFiveClusters) {
  const Grid grid = make_builtin_grid(53);
  EXPECT_EQ(grid.cluster_count(), 5);
  EXPECT_EQ(grid.total_resources(), 5 * 53);
}

TEST(Grid, RandomGridRespectsBounds) {
  Rng rng(1);
  const Grid grid = make_random_grid(8, 15, 60, rng);
  EXPECT_EQ(grid.cluster_count(), 8);
  for (const auto& c : grid.clusters()) {
    EXPECT_GE(c.resources(), 15);
    EXPECT_LE(c.resources(), 60);
    EXPECT_TRUE(c.monotone_speedup());
    EXPECT_EQ(c.min_group(), 4);
    EXPECT_EQ(c.max_group(), 11);
  }
}

TEST(Grid, RandomGridDeterministicPerSeed) {
  Rng rng1(7), rng2(7);
  const Grid a = make_random_grid(3, 20, 40, rng1);
  const Grid b = make_random_grid(3, 20, 40, rng2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.cluster(i).resources(), b.cluster(i).resources());
    EXPECT_DOUBLE_EQ(a.cluster(i).main_time(7), b.cluster(i).main_time(7));
  }
}

TEST(Grid, RandomGridValidation) {
  Rng rng(1);
  EXPECT_THROW((void)make_random_grid(0, 10, 20, rng), std::invalid_argument);
  EXPECT_THROW((void)make_random_grid(2, 20, 10, rng), std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::platform
