#include "platform/cluster.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "platform/profiles.hpp"
#include "platform/speedup.hpp"

namespace oagrid::platform {
namespace {

Cluster simple() { return Cluster("c", 40, 4, {100, 90, 80, 70}, 10); }

TEST(Cluster, Accessors) {
  const Cluster c = simple();
  EXPECT_EQ(c.name(), "c");
  EXPECT_EQ(c.resources(), 40);
  EXPECT_EQ(c.min_group(), 4);
  EXPECT_EQ(c.max_group(), 7);
  EXPECT_DOUBLE_EQ(c.main_time(4), 100);
  EXPECT_DOUBLE_EQ(c.main_time(7), 70);
  EXPECT_DOUBLE_EQ(c.post_time(), 10);
}

TEST(Cluster, MainTimeRangeEnforced) {
  const Cluster c = simple();
  EXPECT_THROW((void)c.main_time(3), std::invalid_argument);
  EXPECT_THROW((void)c.main_time(8), std::invalid_argument);
}

TEST(Cluster, Validation) {
  EXPECT_THROW(Cluster("x", 0, 4, {1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(Cluster("x", 10, 0, {1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(Cluster("x", 10, 4, {}, 1.0), std::invalid_argument);
  EXPECT_THROW(Cluster("x", 10, 4, {-1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(Cluster("x", 10, 4, {1.0}, -1.0), std::invalid_argument);
}

TEST(Cluster, ZeroPostTimeAllowedForSyntheticWorkloads) {
  const Cluster c("tailless", 10, 4, {5.0}, 0.0);
  EXPECT_DOUBLE_EQ(c.post_time(), 0.0);
}

TEST(Cluster, FromSpeedupModel) {
  const CoupledModel model;
  const Cluster c("ref", 64, model, 180.0);
  EXPECT_EQ(c.min_group(), 4);
  EXPECT_EQ(c.max_group(), 11);
  EXPECT_DOUBLE_EQ(c.main_time(11), model.time_on(11));
}

TEST(Cluster, WithResources) {
  const Cluster c = simple().with_resources(99);
  EXPECT_EQ(c.resources(), 99);
  EXPECT_DOUBLE_EQ(c.main_time(4), 100);  // times unchanged
  EXPECT_THROW((void)simple().with_resources(0), std::invalid_argument);
}

TEST(Cluster, ScaledMultipliesAllTimes) {
  const Cluster c = simple().scaled(2.0);
  EXPECT_DOUBLE_EQ(c.main_time(4), 200);
  EXPECT_DOUBLE_EQ(c.post_time(), 20);
  EXPECT_THROW((void)simple().scaled(0.0), std::invalid_argument);
}

TEST(Cluster, MonotoneSpeedupDetection) {
  EXPECT_TRUE(simple().monotone_speedup());
  const Cluster bumpy("b", 40, 4, {100, 110, 80}, 10);
  EXPECT_FALSE(bumpy.monotone_speedup());
}

TEST(Profiles, FiveProfilesSpanPaperAnchors) {
  const auto profiles = builtin_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  const Cluster fastest = make_builtin_cluster(0, 64);
  const Cluster slowest = make_builtin_cluster(4, 64);
  // §6: fastest runs one main task on 11 resources in 1177 s, slowest 1622 s.
  EXPECT_NEAR(fastest.main_time(11), 1177.0, 10.0);
  EXPECT_NEAR(slowest.main_time(11), 1622.0, 10.0);
}

TEST(Profiles, AllMonotoneAndOrderedBySpeed) {
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(make_builtin_cluster(i, 32).monotone_speedup()) << i;
  for (int i = 0; i + 1 < 5; ++i)
    EXPECT_LT(make_builtin_cluster(i, 32).main_time(11),
              make_builtin_cluster(i + 1, 32).main_time(11));
}

TEST(Profiles, PostTimeScalesWithProfile) {
  const Cluster reference = make_builtin_cluster(1, 32);
  EXPECT_NEAR(reference.post_time(), 180.0, 1e-9);
  const Cluster slowest = make_builtin_cluster(4, 32);
  EXPECT_GT(slowest.post_time(), reference.post_time());
}

TEST(Profiles, IndexRangeEnforced) {
  EXPECT_THROW((void)make_builtin_cluster(-1, 32), std::invalid_argument);
  EXPECT_THROW((void)make_builtin_cluster(5, 32), std::invalid_argument);
}

TEST(Profiles, PaperRatioMainOverPost) {
  // Figure 1's 1260 s pcr vs 180 s post gives the exact 7:1 ratio the paper's
  // worked example relies on; the reference profile must preserve it.
  const Cluster reference = make_builtin_cluster(1, 32);
  EXPECT_NEAR(reference.main_time(11) / reference.post_time(), 7.0, 0.05);
}

}  // namespace
}  // namespace oagrid::platform
