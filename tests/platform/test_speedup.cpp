#include "platform/speedup.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "platform/profiles.hpp"

namespace oagrid::platform {
namespace {

TEST(MeasuredTable, BasicLookup) {
  const MeasuredTable table(4, {100, 90, 80});
  EXPECT_EQ(table.min_procs(), 4);
  EXPECT_EQ(table.max_procs(), 6);
  EXPECT_DOUBLE_EQ(table.time_on(4), 100);
  EXPECT_DOUBLE_EQ(table.time_on(6), 80);
}

TEST(MeasuredTable, RangeEnforced) {
  const MeasuredTable table(4, {100, 90});
  EXPECT_THROW((void)table.time_on(3), std::invalid_argument);
  EXPECT_THROW((void)table.time_on(6), std::invalid_argument);
}

TEST(MeasuredTable, RejectsBadInput) {
  EXPECT_THROW(MeasuredTable(0, {1.0}), std::invalid_argument);
  EXPECT_THROW(MeasuredTable(4, {}), std::invalid_argument);
  EXPECT_THROW(MeasuredTable(4, {1.0, -2.0}), std::invalid_argument);
}

TEST(CoupledModel, PaperAnchors) {
  // The reference model must hit the paper's pcr benchmark: ~1260 s on 11
  // processors (1258 from the model + 2 s fused pre-processing).
  const CoupledModel model;
  EXPECT_EQ(model.min_procs(), 4);
  EXPECT_EQ(model.max_procs(), 11);
  EXPECT_NEAR(model.time_on(11), 1258.0, 5.0);
}

TEST(CoupledModel, MonotoneDecreasing) {
  const CoupledModel model;
  for (ProcCount g = model.min_procs(); g < model.max_procs(); ++g)
    EXPECT_GT(model.time_on(g), model.time_on(g + 1)) << "at g=" << g;
}

TEST(CoupledModel, SaturationStopsSpeedup) {
  CoupledModel::Params p = reference_coupled_params();
  p.max_group = 14;  // allow beyond the paper's 11 to observe the plateau
  const CoupledModel model(p);
  // 11 procs = 8 atmosphere workers = saturation; 12, 13, 14 change nothing.
  EXPECT_DOUBLE_EQ(model.time_on(12), model.time_on(11));
  EXPECT_DOUBLE_EQ(model.time_on(14), model.time_on(11));
}

TEST(CoupledModel, SpeedFactorScalesLinearly) {
  CoupledModel::Params p = reference_coupled_params();
  p.speed_factor = 2.0;
  const CoupledModel slow(p);
  const CoupledModel fast;
  for (ProcCount g = 4; g <= 11; ++g)
    EXPECT_NEAR(slow.time_on(g), 2.0 * fast.time_on(g), 1e-9);
}

TEST(CoupledModel, ValidatesParams) {
  CoupledModel::Params p = reference_coupled_params();
  p.speed_factor = 0;
  EXPECT_THROW(CoupledModel{p}, std::invalid_argument);
  p = reference_coupled_params();
  p.max_group = 3;  // <= pinned
  EXPECT_THROW(CoupledModel{p}, std::invalid_argument);
  p = reference_coupled_params();
  p.atm_work = -1;
  EXPECT_THROW(CoupledModel{p}, std::invalid_argument);
}

TEST(AmdahlModel, LimitsAndShape) {
  const AmdahlModel model(100.0, 0.2, 1, 64);
  EXPECT_DOUBLE_EQ(model.time_on(1), 100.0);
  // Infinite processors would leave the serial 20 s; 64 is close.
  EXPECT_NEAR(model.time_on(64), 100.0 * (0.2 + 0.8 / 64), 1e-9);
  for (ProcCount g = 1; g < 64; ++g)
    EXPECT_GT(model.time_on(g), model.time_on(g + 1));
}

TEST(AmdahlModel, Validation) {
  EXPECT_THROW(AmdahlModel(0, 0.5, 1, 4), std::invalid_argument);
  EXPECT_THROW(AmdahlModel(10, 1.5, 1, 4), std::invalid_argument);
  EXPECT_THROW(AmdahlModel(10, 0.5, 4, 1), std::invalid_argument);
}

TEST(PowerLawModel, Shape) {
  const PowerLawModel model(100.0, 0.5, 1, 16);
  EXPECT_DOUBLE_EQ(model.time_on(1), 100.0);
  EXPECT_NEAR(model.time_on(4), 50.0, 1e-9);
  EXPECT_NEAR(model.time_on(16), 25.0, 1e-9);
}

TEST(PowerLawModel, Validation) {
  EXPECT_THROW(PowerLawModel(10, 0.0, 1, 4), std::invalid_argument);
  EXPECT_THROW(PowerLawModel(10, 1.5, 1, 4), std::invalid_argument);
}

TEST(SpeedupModel, TabulateMatchesPointQueries) {
  const CoupledModel model;
  const auto table = model.tabulate();
  ASSERT_EQ(table.size(), 8u);
  for (ProcCount g = 4; g <= 11; ++g)
    EXPECT_DOUBLE_EQ(table[static_cast<std::size_t>(g - 4)], model.time_on(g));
}

TEST(SpeedupModel, CloneIsIndependentAndEqual) {
  const CoupledModel model;
  const auto clone = model.clone();
  for (ProcCount g = 4; g <= 11; ++g)
    EXPECT_DOUBLE_EQ(clone->time_on(g), model.time_on(g));
}

}  // namespace
}  // namespace oagrid::platform
