#include "platform/parser.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "platform/profiles.hpp"

namespace oagrid::platform {
namespace {

constexpr const char* kValid = R"(
# two-cluster grid
cluster alpha
resources 53
min_group 4
main_times 4722 2902 2175 1852 1660 1537 1454 1258
post_time 180

cluster beta
resources 20
min_group 4
main_times 500 400 300 200 150 120 110 100
post_time 30
)";

TEST(Parser, ParsesValidFile) {
  const Grid grid = parse_grid_string(kValid);
  ASSERT_EQ(grid.cluster_count(), 2);
  EXPECT_EQ(grid.cluster(0).name(), "alpha");
  EXPECT_EQ(grid.cluster(0).resources(), 53);
  EXPECT_DOUBLE_EQ(grid.cluster(0).main_time(11), 1258);
  EXPECT_DOUBLE_EQ(grid.cluster(1).post_time(), 30);
  EXPECT_EQ(grid.cluster(1).max_group(), 11);
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  const Grid grid = parse_grid_string(
      "cluster x # trailing comment\n# full comment\n\nresources 10\n"
      "min_group 4\nmain_times 9 8\npost_time 1\n");
  EXPECT_EQ(grid.cluster(0).name(), "x");
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_grid_string("cluster x\nresources nope\n");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, DirectiveBeforeClusterRejected) {
  EXPECT_THROW((void)parse_grid_string("resources 5\n"), std::invalid_argument);
}

TEST(Parser, MissingFieldRejected) {
  EXPECT_THROW((void)parse_grid_string(
                   "cluster x\nresources 5\nmin_group 4\npost_time 1\n"),
               std::invalid_argument);  // no main_times
  EXPECT_THROW((void)parse_grid_string(
                   "cluster x\nresources 5\nmain_times 1 2\npost_time 1\n"),
               std::invalid_argument);  // no min_group
}

TEST(Parser, UnknownDirectiveRejected) {
  EXPECT_THROW((void)parse_grid_string("cluster x\nfrobnicate 5\n"),
               std::invalid_argument);
}

TEST(Parser, NonPositiveValuesRejected) {
  EXPECT_THROW((void)parse_grid_string("cluster x\nresources 0\n"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse_grid_string(
          "cluster x\nresources 5\nmin_group 4\nmain_times 1 -2\npost_time 1\n"),
      std::invalid_argument);
}

TEST(Parser, EmptyInputRejected) {
  EXPECT_THROW((void)parse_grid_string(""), std::invalid_argument);
  EXPECT_THROW((void)parse_grid_string("# only a comment\n"),
               std::invalid_argument);
}

TEST(Parser, RoundTripsThroughWriter) {
  const Grid original = make_builtin_grid(40);
  std::ostringstream os;
  write_grid(os, original);
  const Grid reparsed = parse_grid_string(os.str());
  ASSERT_EQ(reparsed.cluster_count(), original.cluster_count());
  for (int c = 0; c < original.cluster_count(); ++c) {
    EXPECT_EQ(reparsed.cluster(c).name(), original.cluster(c).name());
    EXPECT_EQ(reparsed.cluster(c).resources(), original.cluster(c).resources());
    for (ProcCount g = 4; g <= 11; ++g)
      EXPECT_NEAR(reparsed.cluster(c).main_time(g),
                  original.cluster(c).main_time(g), 1e-6);
    EXPECT_NEAR(reparsed.cluster(c).post_time(), original.cluster(c).post_time(),
                1e-6);
  }
}

}  // namespace
}  // namespace oagrid::platform
