#include <gtest/gtest.h>

#include "appmodel/volumes.hpp"
#include "middleware/client.hpp"
#include "middleware/master_agent.hpp"
#include "net/network.hpp"
#include "platform/profiles.hpp"
#include "sim/grid_sim.hpp"

namespace oagrid::middleware {
namespace {

using appmodel::Ensemble;

TEST(ClientStaging, NoNetworkDegradesToPlainSubmit) {
  const auto grid = platform::make_builtin_grid(30);
  const Ensemble ensemble{8, 10};
  MasterAgent agent(grid);
  Client client(agent);

  const CampaignResult plain = client.submit(ensemble,
                                             sched::Heuristic::kKnapsack);
  const auto staged =
      client.submit_staged(ensemble, sched::Heuristic::kKnapsack, {});
  agent.shutdown();

  EXPECT_EQ(staged.campaign.repartition.dags_per_cluster,
            plain.repartition.dags_per_cluster);
  EXPECT_DOUBLE_EQ(staged.makespan, plain.makespan);
  EXPECT_EQ(staged.transfer_mb, 0.0);
  EXPECT_EQ(staged.deadline_misses, 0);
}

TEST(ClientStaging, FreeNetworkIsBitIdenticalToPlainSubmit) {
  const auto grid = platform::make_builtin_grid(30).prefix(3);
  const Ensemble ensemble{6, 8};
  MasterAgent agent(grid);
  Client client(agent);

  const CampaignResult plain = client.submit(ensemble,
                                             sched::Heuristic::kKnapsack);
  Client::StagingOptions options;
  options.data = sim::campaign_network_options(
      net::free_network(static_cast<int>(grid.cluster_count())), ensemble);
  const auto staged =
      client.submit_staged(ensemble, sched::Heuristic::kKnapsack, options);
  agent.shutdown();

  EXPECT_EQ(staged.campaign.repartition.dags_per_cluster,
            plain.repartition.dags_per_cluster);
  // Free transfers add exactly 0.0 everywhere — not "approximately".
  EXPECT_EQ(staged.makespan, plain.makespan);
  for (ClusterId c = 0; c < static_cast<ClusterId>(grid.cluster_count()); ++c) {
    EXPECT_EQ(staged.staging_seconds[static_cast<std::size_t>(c)], 0.0);
    EXPECT_EQ(staged.collection_seconds[static_cast<std::size_t>(c)], 0.0);
  }
  // The transfers still happened (and were metered), they just cost nothing.
  EXPECT_GT(staged.transfer_mb, 0.0);
}

TEST(ClientStaging, RealNetworkAddsTransferTimeAndMatchesGridSim) {
  const auto grid = platform::make_builtin_grid(30).prefix(3);
  const Ensemble ensemble{6, 8};
  const auto heuristic = sched::Heuristic::kKnapsack;
  Client::StagingOptions options;
  options.data = sim::campaign_network_options(
      net::renater_network(static_cast<int>(grid.cluster_count())), ensemble);

  const sim::GridSimResult direct =
      sim::simulate_grid(grid, ensemble, heuristic, 1, options.data);

  MasterAgent agent(grid);
  Client client(agent);
  const auto staged = client.submit_staged(ensemble, heuristic, options);
  agent.shutdown();

  // The middleware path prices data movement identically to the in-process
  // grid simulation: same charged repartition, same end-to-end makespan.
  EXPECT_EQ(staged.campaign.repartition.dags_per_cluster,
            direct.repartition.dags_per_cluster);
  EXPECT_DOUBLE_EQ(staged.makespan, direct.makespan);
  EXPECT_DOUBLE_EQ(staged.transfer_mb, direct.transfer_mb);
  EXPECT_GT(staged.makespan, staged.campaign.makespan);  // transfers cost time
}

TEST(ClientStaging, CountsDeadlineMisses) {
  const auto grid = platform::make_builtin_grid(30).prefix(2);
  const Ensemble ensemble{4, 6};
  Client::StagingOptions options;
  options.data = sim::campaign_network_options(
      net::renater_network(static_cast<int>(grid.cluster_count())), ensemble);
  // Far below any 120 MB shipment over the RENATER profile (~1 s each).
  options.transfer_deadline = 1e-6;

  MasterAgent agent(grid);
  Client client(agent);
  const auto tight =
      client.submit_staged(ensemble, sched::Heuristic::kKnapsack, options);
  options.transfer_deadline = kInfiniteTime;
  const auto loose =
      client.submit_staged(ensemble, sched::Heuristic::kKnapsack, options);
  agent.shutdown();

  EXPECT_GT(tight.deadline_misses, 0);
  EXPECT_EQ(loose.deadline_misses, 0);
  // The deadline is an SLO check, not a scheduler input: results match.
  EXPECT_DOUBLE_EQ(tight.makespan, loose.makespan);
}

}  // namespace
}  // namespace oagrid::middleware
