#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "middleware/client.hpp"
#include "middleware/mailbox.hpp"
#include "middleware/master_agent.hpp"
#include "platform/profiles.hpp"
#include "sim/grid_sim.hpp"

namespace oagrid::middleware {
namespace {

using appmodel::Ensemble;

TEST(Mailbox, FifoOrder) {
  Mailbox<int> box;
  box.send(1);
  box.send(2);
  box.send(3);
  EXPECT_EQ(box.receive(), 1);
  EXPECT_EQ(box.receive(), 2);
  EXPECT_EQ(box.receive(), 3);
}

TEST(Mailbox, TryReceiveNonBlocking) {
  Mailbox<int> box;
  EXPECT_EQ(box.try_receive(), std::nullopt);
  box.send(7);
  EXPECT_EQ(box.try_receive(), 7);
}

TEST(Mailbox, CloseDrainsThenEnds) {
  Mailbox<int> box;
  box.send(1);
  box.close();
  EXPECT_FALSE(box.send(2));  // dropped after close
  EXPECT_EQ(box.receive(), 1);
  EXPECT_EQ(box.receive(), std::nullopt);
  EXPECT_TRUE(box.closed());
}

TEST(Mailbox, CrossThreadDelivery) {
  Mailbox<int> box;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) box.send(i);
    box.close();
  });
  int expected = 0;
  while (auto v = box.receive()) EXPECT_EQ(*v, expected++);
  EXPECT_EQ(expected, 100);
  producer.join();
}

TEST(ServerDaemon, AnswersPerfRequest) {
  ServerDaemon daemon(0, platform::make_builtin_cluster(1, 30));
  Mailbox<SedResponse> reply;
  PerfRequest request;
  request.request_id = 42;
  request.scenarios = 4;
  request.months = 6;
  request.heuristic = sched::Heuristic::kKnapsack;
  request.reply = &reply;
  daemon.inbox().send(SedRequest{request});
  const auto response = reply.receive();
  ASSERT_TRUE(response.has_value());
  const auto& perf = std::get<PerfResponse>(*response);
  EXPECT_EQ(perf.request_id, 42);
  EXPECT_EQ(perf.cluster, 0);
  ASSERT_EQ(perf.performance.size(), 4u);
  for (std::size_t k = 1; k < 4; ++k)
    EXPECT_GE(perf.performance[k], perf.performance[k - 1]);
  daemon.stop();
}

TEST(ServerDaemon, AnswersExecuteRequest) {
  ServerDaemon daemon(3, platform::make_builtin_cluster(2, 25));
  Mailbox<SedResponse> reply;
  ExecuteRequest request;
  request.request_id = 7;
  request.scenarios = 3;
  request.months = 5;
  request.heuristic = sched::Heuristic::kBasic;
  request.reply = &reply;
  daemon.inbox().send(SedRequest{request});
  const auto response = reply.receive();
  ASSERT_TRUE(response.has_value());
  const auto& exec = std::get<ExecuteResponse>(*response);
  EXPECT_EQ(exec.cluster, 3);
  EXPECT_EQ(exec.scenarios_run, 3);
  EXPECT_EQ(exec.mains_executed, 15);
  EXPECT_EQ(exec.posts_executed, 15);
  EXPECT_GT(exec.makespan, 0.0);
  daemon.stop();
}

TEST(ServerDaemon, StreamsProgressWhenAsked) {
  ServerDaemon daemon(1, platform::make_builtin_cluster(1, 30));
  Mailbox<SedResponse> reply;
  ExecuteRequest request;
  request.request_id = 5;
  request.scenarios = 4;
  request.months = 10;  // 40 main tasks
  request.progress_every = 10;
  request.reply = &reply;
  daemon.inbox().send(SedRequest{request});

  int updates = 0;
  Count last_done = 0;
  Seconds last_time = -1.0;
  for (;;) {
    const auto response = reply.receive();
    ASSERT_TRUE(response.has_value());
    if (const auto* progress = std::get_if<ProgressUpdate>(&*response)) {
      ++updates;
      EXPECT_GT(progress->months_done, last_done);   // monotone progress
      EXPECT_GT(progress->simulated_time, last_time);
      EXPECT_EQ(progress->months_total, 40);
      last_done = progress->months_done;
      last_time = progress->simulated_time;
      continue;
    }
    const auto& exec = std::get<ExecuteResponse>(*response);
    EXPECT_EQ(exec.mains_executed, 40);
    break;
  }
  EXPECT_EQ(updates, 4);  // 10, 20, 30, 40
  EXPECT_EQ(last_done, 40);
  daemon.stop();
}

TEST(ServerDaemon, NoProgressByDefault) {
  ServerDaemon daemon(0, platform::make_builtin_cluster(0, 25));
  Mailbox<SedResponse> reply;
  ExecuteRequest request;
  request.request_id = 6;
  request.scenarios = 2;
  request.months = 5;
  request.reply = &reply;
  daemon.inbox().send(SedRequest{request});
  const auto response = reply.receive();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(std::holds_alternative<ExecuteResponse>(*response));
  EXPECT_EQ(reply.try_receive(), std::nullopt);
  daemon.stop();
}

TEST(ServerDaemon, StopIsIdempotent) {
  ServerDaemon daemon(0, platform::make_builtin_cluster(0, 20));
  daemon.stop();
  daemon.stop();
}

TEST(MasterAgent, DeploysFleetFromGrid) {
  MasterAgent agent(platform::make_builtin_grid(20));
  EXPECT_EQ(agent.daemon_count(), 5);
  EXPECT_EQ(agent.daemon(2).cluster().name(), "chicon");
  EXPECT_THROW((void)agent.daemon(5), std::invalid_argument);
  agent.shutdown();
}

TEST(Client, FullCampaignMatchesDirectSimulation) {
  // The middleware path (Figure 9's six steps) must land on exactly the
  // same repartition and makespan as the in-process grid simulation.
  const auto grid = platform::make_builtin_grid(30);
  const Ensemble ensemble{8, 10};
  const auto heuristic = sched::Heuristic::kKnapsack;

  const sim::GridSimResult direct = sim::simulate_grid(grid, ensemble, heuristic);

  MasterAgent agent(grid);
  Client client(agent);
  const CampaignResult campaign = client.submit(ensemble, heuristic);
  agent.shutdown();

  EXPECT_EQ(campaign.repartition.dags_per_cluster,
            direct.repartition.dags_per_cluster);
  EXPECT_DOUBLE_EQ(campaign.makespan, direct.makespan);
  // Executions arrive only from clusters that got work.
  for (const auto& exec : campaign.executions) {
    EXPECT_GT(exec.scenarios_run, 0);
    EXPECT_EQ(exec.mains_executed, exec.scenarios_run * ensemble.months);
  }
}

TEST(Client, SequentialCampaignsReuseTheFleet) {
  MasterAgent agent(platform::make_builtin_grid(25).prefix(3));
  Client client(agent);
  const CampaignResult first = client.submit(Ensemble{4, 6},
                                             sched::Heuristic::kBasic);
  const CampaignResult second = client.submit(Ensemble{6, 6},
                                              sched::Heuristic::kKnapsack);
  EXPECT_EQ(first.repartition.total_dags(), 4);
  EXPECT_EQ(second.repartition.total_dags(), 6);
  agent.shutdown();
}

TEST(Client, ConcurrentClientsDoNotInterfere) {
  MasterAgent agent(platform::make_builtin_grid(25).prefix(3));
  CampaignResult r1, r2;
  std::thread t1([&] {
    Client c(agent);
    r1 = c.submit(Ensemble{5, 8}, sched::Heuristic::kKnapsack);
  });
  std::thread t2([&] {
    Client c(agent);
    r2 = c.submit(Ensemble{5, 8}, sched::Heuristic::kKnapsack);
  });
  t1.join();
  t2.join();
  agent.shutdown();
  // Identical requests -> identical results, regardless of interleaving.
  EXPECT_EQ(r1.repartition.dags_per_cluster, r2.repartition.dags_per_cluster);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
}

TEST(Client, RejectsEmptyFleet) {
  MasterAgent agent;
  Client client(agent);
  EXPECT_THROW((void)client.submit(Ensemble{2, 2}, sched::Heuristic::kBasic),
               std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::middleware
