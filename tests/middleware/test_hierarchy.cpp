#include "middleware/local_agent.hpp"

#include <gtest/gtest.h>

#include "middleware/client.hpp"
#include "middleware/master_agent.hpp"
#include "platform/profiles.hpp"

namespace oagrid::middleware {
namespace {

using appmodel::Ensemble;

TEST(LocalAgent, RequiresChildren) {
  EXPECT_THROW(LocalAgent({}), std::invalid_argument);
}

TEST(LocalAgent, ServesUnionOfChildren) {
  ServerDaemon a(0, platform::make_builtin_cluster(0, 15));
  ServerDaemon b(1, platform::make_builtin_cluster(1, 15));
  LocalAgent leaf({&a, &b});
  EXPECT_EQ(leaf.served(), (std::vector<ClusterId>{0, 1}));
  EXPECT_EQ(leaf.daemon_count(), 2);
  leaf.stop();
  a.stop();
  b.stop();
}

TEST(LocalAgent, RejectsDuplicateClusterIds) {
  ServerDaemon a(3, platform::make_builtin_cluster(0, 15));
  ServerDaemon b(3, platform::make_builtin_cluster(1, 15));
  EXPECT_THROW(LocalAgent({&a, &b}), std::invalid_argument);
  a.stop();
  b.stop();
}

TEST(LocalAgent, BroadcastReachesEveryLeafThroughTheTree) {
  ServerDaemon s0(0, platform::make_builtin_cluster(0, 15));
  ServerDaemon s1(1, platform::make_builtin_cluster(1, 15));
  ServerDaemon s2(2, platform::make_builtin_cluster(2, 15));
  LocalAgent left({&s0, &s1});
  LocalAgent root({&left, &s2});
  EXPECT_EQ(root.daemon_count(), 3);

  Mailbox<SedResponse> reply;
  PerfRequest request;
  request.request_id = 9;
  request.scenarios = 2;
  request.months = 3;
  request.reply = &reply;
  root.inbox().send(AgentMessage{AgentBroadcast{request}});

  std::set<ClusterId> responded;
  for (int i = 0; i < 3; ++i) {
    const auto response = reply.receive();
    ASSERT_TRUE(response.has_value());
    responded.insert(std::get<PerfResponse>(*response).cluster);
  }
  EXPECT_EQ(responded, (std::set<ClusterId>{0, 1, 2}));
  root.stop();
  left.stop();
  s0.stop();
  s1.stop();
  s2.stop();
}

TEST(LocalAgent, RoutesExecuteToTheOwningSubtree) {
  ServerDaemon s0(0, platform::make_builtin_cluster(0, 15));
  ServerDaemon s1(1, platform::make_builtin_cluster(1, 15));
  LocalAgent root({&s0, &s1});

  Mailbox<SedResponse> reply;
  ExecuteRequest request;
  request.request_id = 4;
  request.scenarios = 1;
  request.months = 2;
  request.reply = &reply;
  root.inbox().send(AgentMessage{AgentRoute{1, request}});

  const auto response = reply.receive();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(std::get<ExecuteResponse>(*response).cluster, 1);
  root.stop();
  s0.stop();
  s1.stop();
}

TEST(HierarchicalAgent, TreeShapeMatchesBranching) {
  const auto grid = platform::make_builtin_grid(15);
  HierarchicalAgent binary(grid, 2);
  // 5 leaves at branching 2: 3 agents level 1 -> 2 level 2 -> 1 root = 6.
  EXPECT_EQ(binary.daemon_count(), 5);
  EXPECT_EQ(binary.agent_count(), 6);
  EXPECT_EQ(binary.tree_depth(), 3);
  binary.shutdown();

  HierarchicalAgent wide(grid, 8);
  EXPECT_EQ(wide.agent_count(), 1);
  EXPECT_EQ(wide.tree_depth(), 1);
  wide.shutdown();
}

TEST(HierarchicalAgent, ValidatesInputs) {
  const platform::Grid empty;
  EXPECT_THROW(HierarchicalAgent(empty, 2), std::invalid_argument);
  EXPECT_THROW(HierarchicalAgent(platform::make_builtin_grid(15), 1),
               std::invalid_argument);
}

TEST(HierarchicalAgent, CampaignMatchesFlatDeployment) {
  // The client cannot tell a hierarchical deployment from a flat one: same
  // repartition, same makespan.
  const auto grid = platform::make_builtin_grid(25);
  const Ensemble ensemble{8, 10};

  MasterAgent flat(grid);
  Client flat_client(flat);
  const CampaignResult flat_result =
      flat_client.submit(ensemble, sched::Heuristic::kKnapsack);
  flat.shutdown();

  HierarchicalAgent tree(grid, 2);
  Client tree_client(tree);
  const CampaignResult tree_result =
      tree_client.submit(ensemble, sched::Heuristic::kKnapsack);
  tree.shutdown();

  EXPECT_EQ(tree_result.repartition.dags_per_cluster,
            flat_result.repartition.dags_per_cluster);
  EXPECT_DOUBLE_EQ(tree_result.makespan, flat_result.makespan);
  EXPECT_EQ(tree_result.executions.size(), flat_result.executions.size());
}

TEST(HierarchicalAgent, SequentialCampaigns) {
  HierarchicalAgent tree(platform::make_builtin_grid(20).prefix(4), 2);
  Client client(tree);
  const CampaignResult first =
      client.submit(Ensemble{3, 5}, sched::Heuristic::kBasic);
  const CampaignResult second =
      client.submit(Ensemble{6, 5}, sched::Heuristic::kKnapsack);
  EXPECT_EQ(first.repartition.total_dags(), 3);
  EXPECT_EQ(second.repartition.total_dags(), 6);
  tree.shutdown();
}

TEST(HierarchicalAgent, ShutdownIsIdempotent) {
  HierarchicalAgent tree(platform::make_builtin_grid(15).prefix(2), 2);
  tree.shutdown();
  tree.shutdown();
}

}  // namespace
}  // namespace oagrid::middleware
