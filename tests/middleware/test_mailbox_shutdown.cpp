/// \file test_mailbox_shutdown.cpp
/// \brief Shutdown-race regression tests for Mailbox and ServerDaemon.
///
/// These tests hammer the teardown orderings that historically race in
/// condvar-based queues (and that the notify-under-lock discipline in
/// mailbox.hpp exists to prevent):
///  * close() while senders are mid-send: every accepted message must be
///    drainable, every rejected send must be counted, nothing lost;
///  * close()-then-destroy while a sender is still inside send(): with
///    notify-after-unlock this is a use-after-free on the condvar, which
///    ThreadSanitizer flags (the CI TSan job runs this binary);
///  * concurrent ServerDaemon::stop() from several threads joining once.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "middleware/mailbox.hpp"
#include "middleware/server_daemon.hpp"
#include "obs/metrics.hpp"
#include "platform/profiles.hpp"

namespace oagrid::middleware {
namespace {

TEST(MailboxShutdown, CloseMidStreamLosesNoAcceptedMessage) {
  constexpr int kSenders = 4;
  constexpr int kPerSender = 2000;

  Mailbox<int> mailbox;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};

  std::vector<std::thread> senders;
  senders.reserve(kSenders);
  for (int s = 0; s < kSenders; ++s)
    senders.emplace_back([&mailbox, &accepted, &rejected, s] {
      for (int i = 0; i < kPerSender; ++i) {
        if (mailbox.send(s * kPerSender + i))
          accepted.fetch_add(1, std::memory_order_relaxed);
        else
          rejected.fetch_add(1, std::memory_order_relaxed);
      }
    });

  // Drain concurrently and close somewhere mid-stream.
  std::uint64_t received = 0;
  std::thread receiver([&mailbox, &received] {
    while (mailbox.receive().has_value()) ++received;
  });
  while (accepted.load(std::memory_order_relaxed) < kPerSender)
    std::this_thread::yield();
  mailbox.close();
  for (auto& t : senders) t.join();
  receiver.join();

  EXPECT_EQ(received, accepted.load());
  EXPECT_EQ(accepted.load() + rejected.load(),
            static_cast<std::uint64_t>(kSenders) * kPerSender);
  // close() happened mid-stream, so at least one send was dropped... unless
  // the senders outran the closer; either way the counts must reconcile.
  EXPECT_FALSE(mailbox.try_receive().has_value());
}

TEST(MailboxShutdown, CloseWakesBlockedReceiversWithEndOfStream) {
  Mailbox<int> mailbox;
  std::vector<std::thread> receivers;
  std::atomic<int> end_of_stream{0};
  receivers.reserve(3);
  for (int r = 0; r < 3; ++r)
    receivers.emplace_back([&mailbox, &end_of_stream] {
      if (!mailbox.receive().has_value())
        end_of_stream.fetch_add(1, std::memory_order_relaxed);
    });
  mailbox.close();
  for (auto& t : receivers) t.join();
  EXPECT_EQ(end_of_stream.load(), 3);
}

TEST(MailboxShutdown, PendingMessagesStayReceivableAfterClose) {
  Mailbox<int> mailbox;
  ASSERT_TRUE(mailbox.send(1));
  ASSERT_TRUE(mailbox.send(2));
  mailbox.close();
  EXPECT_FALSE(mailbox.send(3));
  EXPECT_EQ(mailbox.receive(), std::optional<int>(1));
  EXPECT_EQ(mailbox.receive(), std::optional<int>(2));
  EXPECT_EQ(mailbox.receive(), std::nullopt);
}

// The use-after-free shape: the receiver observes close(), drains, and the
// mailbox is destroyed while senders may still be inside send(). The sender
// threads are joined before destruction here (C++ requires it), but under
// the old notify-after-unlock scheme the *notification itself* could still
// be in flight on a destroyed condvar between the receiver's last wakeup
// and the sender's return. Iterating the full construct/close/destroy cycle
// many times gives TSan the interleavings it needs.
TEST(MailboxShutdown, CloseThenDestroyHammer) {
  for (int iteration = 0; iteration < 200; ++iteration) {
    auto mailbox = std::make_unique<Mailbox<int>>();
    std::atomic<std::uint64_t> accepted{0};

    std::thread sender([&mailbox_ref = *mailbox, &accepted] {
      for (int i = 0; i < 64; ++i)
        if (mailbox_ref.send(i)) accepted.fetch_add(1);
    });
    std::thread closer([&mailbox_ref = *mailbox] { mailbox_ref.close(); });

    std::uint64_t received = 0;
    while (mailbox->receive().has_value()) ++received;

    sender.join();
    closer.join();
    EXPECT_EQ(received, accepted.load());
    mailbox.reset();  // destroy immediately after the last notification
  }
}

TEST(MailboxShutdown, InstrumentedMailboxCountsSendsAndDrops) {
  obs::Histogram depth;
  obs::Histogram wait;
  obs::Counter sends;
  obs::Counter drops;
  Mailbox<int> mailbox;
  QueueProbe probe;
  probe.depth_on_send = &depth;
  probe.wait_us = &wait;
  probe.sends = &sends;
  probe.dropped_sends = &drops;
  mailbox.instrument(probe);

  ASSERT_TRUE(mailbox.send(1));
  ASSERT_TRUE(mailbox.send(2));
  EXPECT_EQ(mailbox.receive(), std::optional<int>(1));
  mailbox.close();
  EXPECT_FALSE(mailbox.send(3));

  EXPECT_EQ(sends.value(), 2u);
  EXPECT_EQ(drops.value(), 1u);
  const auto depth_snap = depth.snapshot();
  EXPECT_EQ(depth_snap.count, 2u);
  EXPECT_DOUBLE_EQ(depth_snap.max, 2.0);  // second send saw depth 2
  EXPECT_EQ(wait.snapshot().count, 1u);
}

TEST(ServerDaemonShutdown, ConcurrentStopJoinsExactlyOnce) {
  for (int iteration = 0; iteration < 20; ++iteration) {
    ServerDaemon daemon(0, platform::make_builtin_cluster(0, 8));
    std::vector<std::thread> stoppers;
    stoppers.reserve(4);
    for (int s = 0; s < 4; ++s)
      stoppers.emplace_back([&daemon] { daemon.stop(); });
    for (auto& t : stoppers) t.join();
    // Destructor must also tolerate the already-stopped state.
  }
}

TEST(ServerDaemonShutdown, StopThenDestroyWithPendingSenders) {
  for (int iteration = 0; iteration < 20; ++iteration) {
    auto daemon = std::make_unique<ServerDaemon>(
        0, platform::make_builtin_cluster(0, 8));
    std::thread late_sender([&daemon_ref = *daemon] {
      // Shutdown may already have closed the inbox: sends become drops,
      // but must never crash or deadlock.
      for (int i = 0; i < 32; ++i) {
        SedRequest request = ShutdownRequest{};
        (void)daemon_ref.inbox().send(std::move(request));
      }
    });
    daemon->stop();
    late_sender.join();
    daemon.reset();
  }
}

}  // namespace
}  // namespace oagrid::middleware
