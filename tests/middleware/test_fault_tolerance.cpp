#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "middleware/client.hpp"
#include "middleware/local_agent.hpp"
#include "middleware/master_agent.hpp"
#include "platform/profiles.hpp"

namespace oagrid::middleware {
namespace {

using namespace std::chrono_literals;
using appmodel::Ensemble;

TEST(MailboxTimeout, TimesOutWhenEmpty) {
  Mailbox<int> box;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(box.receive_for(30ms), std::nullopt);
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
  EXPECT_FALSE(box.closed());  // timeout, not closure
}

TEST(MailboxTimeout, DeliversPromptly) {
  Mailbox<int> box;
  std::thread producer([&] {
    std::this_thread::sleep_for(5ms);
    box.send(99);
  });
  EXPECT_EQ(box.receive_for(2000ms), 99);
  producer.join();
}

TEST(MailboxTimeout, ClosedAndDrainedReturnsNullopt) {
  Mailbox<int> box;
  box.send(1);
  box.close();
  EXPECT_EQ(box.receive_for(10ms), 1);
  EXPECT_EQ(box.receive_for(10ms), std::nullopt);
  EXPECT_TRUE(box.closed());
}

TEST(FaultTolerance, AllHealthyMatchesPlainSubmit) {
  const auto grid = platform::make_builtin_grid(25);
  const Ensemble ensemble{8, 10};
  MasterAgent agent(grid);
  Client client(agent);
  const CampaignResult plain =
      client.submit(ensemble, sched::Heuristic::kKnapsack);
  const auto guarded = client.submit_with_deadline(
      ensemble, sched::Heuristic::kKnapsack, 30000ms);
  agent.shutdown();

  EXPECT_TRUE(guarded.unresponsive.empty());
  EXPECT_EQ(guarded.responsive.size(), 5u);
  EXPECT_EQ(guarded.campaign.repartition.dags_per_cluster,
            plain.repartition.dags_per_cluster);
  EXPECT_DOUBLE_EQ(guarded.campaign.makespan, plain.makespan);
}

TEST(FaultTolerance, DeadDaemonIsDroppedNotFatal) {
  const auto grid = platform::make_builtin_grid(25);
  const Ensemble ensemble{8, 10};
  MasterAgent agent(grid);
  agent.daemon(3).stop();  // crash one SeD before the campaign

  Client client(agent);
  const auto result = client.submit_with_deadline(
      ensemble, sched::Heuristic::kKnapsack, 500ms);
  agent.shutdown();

  EXPECT_EQ(result.unresponsive, std::vector<ClusterId>{3});
  EXPECT_EQ(result.responsive.size(), 4u);
  EXPECT_EQ(result.campaign.repartition.total_dags(), 8);
  EXPECT_GT(result.campaign.makespan, 0.0);
  // Every execution came from a responsive daemon.
  for (const auto& exec : result.campaign.executions)
    EXPECT_NE(exec.cluster, 3);
}

TEST(FaultTolerance, DeadLeafInsideAnAgentTree) {
  // A daemon dies inside a Local-Agent tree: broadcasts still fan out
  // through the routing agents, the dead leaf is dropped at the deadline,
  // the survivors execute.
  const auto grid = platform::make_builtin_grid(25);
  HierarchicalAgent tree(grid, 2);
  tree.daemon(4).stop();  // crash the 'azur' leaf

  Client client(tree);
  const auto result = client.submit_with_deadline(
      Ensemble{6, 8}, sched::Heuristic::kKnapsack, 500ms);
  tree.shutdown();

  EXPECT_EQ(result.unresponsive, std::vector<ClusterId>{4});
  EXPECT_EQ(result.responsive.size(), 4u);
  EXPECT_EQ(result.campaign.repartition.total_dags(), 6);
  EXPECT_GT(result.campaign.makespan, 0.0);
}

TEST(FaultTolerance, AllDeadThrows) {
  const auto grid = platform::make_builtin_grid(20).prefix(2);
  MasterAgent agent(grid);
  agent.daemon(0).stop();
  agent.daemon(1).stop();
  Client client(agent);
  EXPECT_THROW((void)client.submit_with_deadline(
                   Ensemble{4, 5}, sched::Heuristic::kBasic, 100ms),
               std::runtime_error);
  agent.shutdown();
}

TEST(FaultTolerance, RejectsNonPositiveTimeout) {
  MasterAgent agent(platform::make_builtin_grid(20).prefix(2));
  Client client(agent);
  EXPECT_THROW((void)client.submit_with_deadline(
                   Ensemble{2, 2}, sched::Heuristic::kBasic, 0ms),
               std::invalid_argument);
  agent.shutdown();
}

}  // namespace
}  // namespace oagrid::middleware
