/// \file test_integration.cpp
/// \brief Cross-module tests asserting the paper-level findings the benches
/// reproduce: Figure 7's grouping structure, Figure 8's gain ordering, and
/// the §6 grid behaviour.

#include <gtest/gtest.h>

#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sched/makespan_model.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/grid_sim.hpp"

namespace oagrid {
namespace {

using appmodel::Ensemble;

double gain_percent(Seconds basic, Seconds improved) {
  return 100.0 * (basic - improved) / basic;
}

TEST(Figure7, OptimalGroupingOscillatesWithResources) {
  // The best G is not monotone in R: the floor(R/G) packing makes it jump.
  const Ensemble e{10, 150};
  std::vector<ProcCount> best;
  for (ProcCount r = 11; r <= 120; ++r) {
    const auto c = platform::make_builtin_cluster(1, r);
    best.push_back(sched::best_uniform_grouping(c, e).group_size);
  }
  int direction_changes = 0;
  int last_direction = 0;
  for (std::size_t i = 1; i < best.size(); ++i) {
    const int delta = best[i] - best[i - 1];
    if (delta == 0) continue;
    const int direction = delta > 0 ? 1 : -1;
    if (last_direction != 0 && direction != last_direction)
      ++direction_changes;
    last_direction = direction;
  }
  EXPECT_GE(direction_changes, 5) << "Figure 7's sawtooth is missing";
  // And the extremes: tiny R forces small-to-mid G, huge R affords 11.
  EXPECT_EQ(best.back(), 11);
}

TEST(Figure7, EveryAdmissibleGroupSizeAppearsSomewhere) {
  // Across R in [11, 120] the optimum visits most of [4, 11] (the paper's
  // plot spans the full band). Require at least 5 distinct values.
  const Ensemble e{10, 150};
  std::set<ProcCount> seen;
  for (ProcCount r = 11; r <= 120; ++r)
    seen.insert(sched::best_uniform_grouping(
                    platform::make_builtin_cluster(1, r), e)
                    .group_size);
  EXPECT_GE(seen.size(), 5u);
}

TEST(Figure8, KnapsackBeatsBasicAtLowResources) {
  // §4.3: "The representation as an instance of the Knapsack problem yields
  // to the bests results with low resources."
  const Ensemble e{10, 60};
  double total_gain = 0.0;
  int cells = 0;
  for (ProcCount r = 20; r <= 50; r += 3) {
    for (int profile = 0; profile < 5; ++profile) {
      const auto c = platform::make_builtin_cluster(profile, r);
      const Seconds basic =
          sim::simulate_with_heuristic(c, sched::Heuristic::kBasic, e).makespan;
      const Seconds knap =
          sim::simulate_with_heuristic(c, sched::Heuristic::kKnapsack, e)
              .makespan;
      total_gain += gain_percent(basic, knap);
      ++cells;
    }
  }
  EXPECT_GT(total_gain / cells, 1.0) << "knapsack should clearly win at low R";
}

TEST(Figure8, GainsVanishWithAbundantResources) {
  // "With a lot of resources, there are no more gains since there are NS
  // groups of 11 resources."
  const Ensemble e{10, 60};
  for (int profile = 0; profile < 5; ++profile) {
    const auto c = platform::make_builtin_cluster(profile, 120);
    const Seconds basic =
        sim::simulate_with_heuristic(c, sched::Heuristic::kBasic, e).makespan;
    for (const auto h :
         {sched::Heuristic::kRedistribute, sched::Heuristic::kKnapsack}) {
      const Seconds improved = sim::simulate_with_heuristic(c, h, e).makespan;
      EXPECT_NEAR(gain_percent(basic, improved), 0.0, 0.5)
          << to_string(h) << " profile " << profile;
    }
    // Improvement 2 postpones every post to the end; with abundant resources
    // that *costs* a little — exactly the slightly negative Gain-2 points the
    // paper's Figure 8 shows at high R.
    const Seconds all_at_end =
        sim::simulate_with_heuristic(c, sched::Heuristic::kAllForMain, e)
            .makespan;
    const double gain2 = gain_percent(basic, all_at_end);
    EXPECT_LE(gain2, 0.5) << "profile " << profile;
    EXPECT_GT(gain2, -2.0) << "profile " << profile;
  }
}

TEST(Figure8, GainsStayWithinPaperBand) {
  // The paper reports gains roughly in [-2%, 14%]. Our substrate differs, so
  // allow slack, but heuristics should never *lose* badly nor win absurdly.
  const Ensemble e{10, 60};
  for (ProcCount r = 20; r <= 120; r += 10) {
    for (int profile = 0; profile < 5; profile += 2) {
      const auto c = platform::make_builtin_cluster(profile, r);
      const Seconds basic =
          sim::simulate_with_heuristic(c, sched::Heuristic::kBasic, e).makespan;
      for (const auto h : {sched::Heuristic::kRedistribute,
                           sched::Heuristic::kAllForMain,
                           sched::Heuristic::kKnapsack}) {
        const double gain =
            gain_percent(basic,
                         sim::simulate_with_heuristic(c, h, e).makespan);
        EXPECT_GT(gain, -8.0) << to_string(h) << " R=" << r;
        EXPECT_LT(gain, 25.0) << to_string(h) << " R=" << r;
      }
    }
  }
}

TEST(Figure8, PaperWorkedExampleRedistributeGains) {
  // §4.2's example: R = 53, NS = 10 — redistribution (3x8 + 4x7, pool 1)
  // "giving a gain of 4.5% (58 hours less on the makespan)". With the full
  // 1800-month scenario that gain is makespan-proportional; we check the
  // scaled 150-month run lands in a sensible band around it.
  const auto c = platform::make_builtin_cluster(1, 53);
  const Ensemble e{10, 150};
  const Seconds basic =
      sim::simulate_with_heuristic(c, sched::Heuristic::kBasic, e).makespan;
  const Seconds redist =
      sim::simulate_with_heuristic(c, sched::Heuristic::kRedistribute, e)
          .makespan;
  const double gain = gain_percent(basic, redist);
  EXPECT_GT(gain, 1.0);
  EXPECT_LT(gain, 10.0);
}

TEST(Grid, StablePhasesWhereSlowestClusterDominates) {
  // §6: "there are stable phases where no heuristic improves the basic one
  // ... when the makespan depends on the slowest cluster" — verify that at
  // some grid sizes all heuristics coincide.
  const Ensemble e{10, 24};
  int zero_gain_points = 0;
  for (ProcCount r = 11; r <= 40; r += 4) {
    const auto grid = platform::make_builtin_grid(r).prefix(3);
    const Seconds basic =
        sim::simulate_grid(grid, e, sched::Heuristic::kBasic).makespan;
    const Seconds knap =
        sim::simulate_grid(grid, e, sched::Heuristic::kKnapsack).makespan;
    if (std::abs(gain_percent(basic, knap)) < 0.25) ++zero_gain_points;
  }
  EXPECT_GE(zero_gain_points, 1);
}

TEST(Grid, AddingClustersShrinksGains) {
  // §6: "if clusters are added, the gains obtained by the different
  // heuristics are less and less important."
  const Ensemble e{10, 24};
  double gain2 = 0, gain5 = 0;
  int n2 = 0, n5 = 0;
  for (ProcCount r = 15; r <= 60; r += 5) {
    const auto grid = platform::make_builtin_grid(r);
    {
      const Seconds basic =
          sim::simulate_grid(grid.prefix(2), e, sched::Heuristic::kBasic)
              .makespan;
      const Seconds knap =
          sim::simulate_grid(grid.prefix(2), e, sched::Heuristic::kKnapsack)
              .makespan;
      gain2 += gain_percent(basic, knap);
      ++n2;
    }
    {
      const Seconds basic =
          sim::simulate_grid(grid, e, sched::Heuristic::kBasic).makespan;
      const Seconds knap =
          sim::simulate_grid(grid, e, sched::Heuristic::kKnapsack).makespan;
      gain5 += gain_percent(basic, knap);
      ++n5;
    }
  }
  EXPECT_GE(gain2 / n2, gain5 / n5 - 0.5);
}

TEST(FullExperiment, PaperScaleRunCompletes) {
  // The real experiment: 10 scenarios x 1800 months on one 53-processor
  // cluster. 36k tasks through the DES — fast, and the makespan lands near
  // the paper's scale (the 150-year experiment takes months of compute:
  // 1500 sets of ~29 min each ~ 31 days with G=7 grouping at NM=1800).
  const auto c = platform::make_builtin_cluster(1, 53);
  const Ensemble e = Ensemble::paper_full();
  const sim::SimResult r =
      sim::simulate_with_heuristic(c, sched::Heuristic::kKnapsack, e);
  EXPECT_EQ(r.mains_executed, 18000);
  EXPECT_EQ(r.posts_executed, 18000);
  // Order of magnitude: between 20 and 60 simulated days.
  EXPECT_GT(r.makespan, 20.0 * 86400);
  EXPECT_LT(r.makespan, 60.0 * 86400);
}

}  // namespace
}  // namespace oagrid
