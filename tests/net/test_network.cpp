#include "net/network.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "net/parser.hpp"

namespace oagrid::net {
namespace {

TEST(NetworkModel, DefaultsToFreeLinks) {
  const NetworkModel model(4);
  EXPECT_EQ(model.cluster_count(), 4);
  EXPECT_TRUE(model.is_free());
  for (ClusterId a = 0; a < 4; ++a)
    for (ClusterId b = 0; b < 4; ++b) {
      EXPECT_TRUE(model.link(a, b).is_free());
      // A transfer over a free link costs exactly zero, not epsilon.
      EXPECT_EQ(model.transfer_time(a, b, 1e9), 0.0);
    }
}

TEST(NetworkModel, TransferTimeIsLatencyPlusSizeOverBandwidth) {
  NetworkModel model(2);
  model.set_link(0, 1, LinkSpec{100.0, 0.5});
  EXPECT_DOUBLE_EQ(model.transfer_time(0, 1, 250.0), 0.5 + 2.5);
  // Symmetric setter covers both directions.
  EXPECT_DOUBLE_EQ(model.transfer_time(1, 0, 250.0), 0.5 + 2.5);
  // Zero-size transfers cost exactly nothing (no latency charge).
  EXPECT_EQ(model.transfer_time(0, 1, 0.0), 0.0);
}

TEST(NetworkModel, IntraAndInterAreIndependent) {
  NetworkModel model(2);
  model.set_default_inter(LinkSpec{10.0, 1.0});
  model.set_intra(0, LinkSpec{1000.0, 0.001});
  EXPECT_DOUBLE_EQ(model.transfer_time(0, 0, 100.0), 0.001 + 0.1);
  EXPECT_DOUBLE_EQ(model.transfer_time(0, 1, 100.0), 1.0 + 10.0);
  EXPECT_TRUE(model.link(1, 1).is_free());  // untouched intra fabric
}

TEST(NetworkModel, ValidationErrors) {
  EXPECT_THROW(NetworkModel(0), std::invalid_argument);
  NetworkModel model(2);
  EXPECT_THROW(model.set_link(0, 0, LinkSpec{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(model.set_link(0, 2, LinkSpec{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(model.set_link(0, 1, LinkSpec{-5.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(model.set_link(0, 1, LinkSpec{1.0, -0.1}),
               std::invalid_argument);
  EXPECT_THROW((void)model.link(0, 2), std::invalid_argument);
}

TEST(NetworkModel, RenaterProfileShape) {
  const NetworkModel model = renater_network(3);
  EXPECT_FALSE(model.is_free());
  // Inter-site slower and laggier than intra fabric.
  EXPECT_LT(model.link(0, 0).latency, model.link(0, 1).latency);
  EXPECT_GT(model.link(0, 0).bandwidth_mbps, model.link(0, 1).bandwidth_mbps);
  // ~120 MB restart over the backbone lands in the paper-era tens-of-seconds
  // ballpark, not milliseconds or hours.
  const Seconds restart = model.transfer_time(0, 1, 120.0);
  EXPECT_GT(restart, 0.1);
  EXPECT_LT(restart, 60.0);
}

TEST(NetworkParser, ParsesDirectivesAndComments) {
  const std::string text = R"(# Grid'5000 subset
network 3
inter_default 125 0.008
intra_default 1000 0.0001   # trailing comment
link 0 2 50 0.02
intra 1 500 0.001
)";
  const NetworkModel model = parse_network_string(text);
  EXPECT_EQ(model.cluster_count(), 3);
  EXPECT_EQ(model.link(0, 1), (LinkSpec{125.0, 0.008}));
  EXPECT_EQ(model.link(0, 2), (LinkSpec{50.0, 0.02}));
  EXPECT_EQ(model.link(2, 0), (LinkSpec{50.0, 0.02}));
  EXPECT_EQ(model.link(0, 0), (LinkSpec{1000.0, 0.0001}));
  EXPECT_EQ(model.link(1, 1), (LinkSpec{500.0, 0.001}));
}

TEST(NetworkParser, InfBandwidthToken) {
  const NetworkModel model =
      parse_network_string("network 2\nlink 0 1 inf 0.25\n");
  EXPECT_EQ(model.link(0, 1).bandwidth_mbps, kInfiniteBandwidth);
  EXPECT_DOUBLE_EQ(model.transfer_time(0, 1, 1000.0), 0.25);
}

TEST(NetworkParser, ErrorsCarryLineNumbers) {
  const auto message_of = [](const std::string& text) {
    try {
      (void)parse_network_string(text);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string("no error");
  };
  // Unified "<source>:<line>: message" diagnostics (common/parse_error.hpp).
  EXPECT_NE(message_of("link 0 1 10 0\n").find("network:1: "),
            std::string::npos);
  EXPECT_NE(message_of("network 2\nbogus 1 2\n").find("network:2: "),
            std::string::npos);
  EXPECT_NE(message_of("network 2\nlink 0 0 10 0\n").find("network:2: "),
            std::string::npos);
  EXPECT_NE(message_of("network 2\nlink 0 5 10 0\n").find("network:2: "),
            std::string::npos);
  EXPECT_NE(message_of("network 2\nlink 0 1 -3 0\n").find("bandwidth"),
            std::string::npos);
  EXPECT_NE(message_of("").find("no 'network"), std::string::npos);
}

TEST(NetworkParser, WriteParseRoundTripsExactly) {
  NetworkModel model = renater_network(4);
  model.set_link(1, 3, LinkSpec{33.125, 0.0123456789012345});
  model.set_intra(2, LinkSpec{kInfiniteBandwidth, 0.5});

  std::ostringstream out;
  write_network(out, model);
  const NetworkModel reparsed = parse_network_string(out.str());
  EXPECT_EQ(model, reparsed);
}

TEST(NetworkParser, FreeModelRoundTrips) {
  std::ostringstream out;
  write_network(out, free_network(2));
  const NetworkModel reparsed = parse_network_string(out.str());
  EXPECT_TRUE(reparsed.is_free());
  EXPECT_EQ(reparsed, free_network(2));
}

}  // namespace
}  // namespace oagrid::net
