#include "net/fairshare.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"

namespace oagrid::net {
namespace {

NetworkModel two_cluster(double bw, Seconds lat) {
  NetworkModel model(2);
  model.set_link(0, 1, LinkSpec{bw, lat});
  return model;
}

TEST(FairShare, EmptyBatch) {
  const TransferPlan plan = simulate_transfers(free_network(2), {});
  EXPECT_TRUE(plan.results.empty());
  EXPECT_EQ(plan.makespan, 0.0);
  EXPECT_EQ(plan.total_mb, 0.0);
}

TEST(FairShare, SingleTransferMatchesAnalyticTime) {
  const NetworkModel model = two_cluster(100.0, 0.5);
  const std::vector<TransferRequest> reqs = {{0, 1, 200.0, 3.0}};
  const TransferPlan plan = simulate_transfers(model, reqs);
  // finish = start + latency + size / bandwidth
  EXPECT_DOUBLE_EQ(plan.results[0].finish, 3.0 + 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(plan.makespan, plan.results[0].finish);
  EXPECT_DOUBLE_EQ(plan.total_mb, 200.0);
}

TEST(FairShare, EqualShareSerialization) {
  // k simultaneous equal transfers on one directed link each get bw/k, so
  // all finish together at latency + k * size / bw — exactly the batch
  // charge the schedulers price with.
  const NetworkModel model = two_cluster(125.0, 0.008);
  const int k = 5;
  const double size = 120.0;
  std::vector<TransferRequest> reqs(k, TransferRequest{0, 1, size, 0.0});
  const TransferPlan plan = simulate_transfers(model, reqs);
  const Seconds expected = 0.008 + k * size / 125.0;
  for (const TransferResult& r : plan.results)
    EXPECT_NEAR(r.finish, expected, 1e-9);
  EXPECT_NEAR(plan.makespan, expected, 1e-9);
  EXPECT_DOUBLE_EQ(plan.total_mb, k * size);
}

TEST(FairShare, ConservationUnderStaggeredArrivals) {
  // Whatever the interleaving, the link cannot move bytes faster than its
  // bandwidth: makespan >= latency-free lower bound total/bw; and it cannot
  // be slower than full serialization.
  const double bw = 50.0;
  const NetworkModel model = two_cluster(bw, 0.01);
  const std::vector<TransferRequest> reqs = {
      {0, 1, 100.0, 0.0}, {0, 1, 40.0, 0.5}, {0, 1, 260.0, 1.0}};
  const TransferPlan plan = simulate_transfers(model, reqs);
  const double total = 400.0;
  EXPECT_GE(plan.makespan, total / bw);                 // conservation
  EXPECT_LE(plan.makespan, 1.0 + 0.01 + total / bw + 1e-9);  // no idle link
  // Later arrivals slow everyone down; each transfer still finishes after
  // its own uncontended time.
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_GE(plan.results[i].finish,
              reqs[i].start + 0.01 + reqs[i].size_mb / bw - 1e-9);
}

TEST(FairShare, DistinctDirectedLinksDoNotContend) {
  // Full duplex: 0->1 and 1->0 each have the whole bandwidth, as do
  // transfers between unrelated pairs.
  NetworkModel model(3);
  model.set_default_inter(LinkSpec{100.0, 0.0});
  const std::vector<TransferRequest> reqs = {
      {0, 1, 100.0, 0.0}, {1, 0, 100.0, 0.0}, {2, 0, 100.0, 0.0}};
  const TransferPlan plan = simulate_transfers(model, reqs);
  for (const TransferResult& r : plan.results)
    EXPECT_NEAR(r.finish, 1.0, 1e-12);
}

TEST(FairShare, FreeLinkFinishEqualsStartBitwise) {
  const NetworkModel model = free_network(3);
  const std::vector<TransferRequest> reqs = {
      {0, 1, 120.0, 0.0}, {1, 2, 1e6, 12345.6789}, {2, 2, 40.0, 0.1}};
  const TransferPlan plan = simulate_transfers(model, reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(plan.results[i].finish, reqs[i].start);  // exact, not NEAR
  EXPECT_EQ(plan.link_utilization, 0.0);
}

TEST(FairShare, ZeroSizeCompletesAtArrival) {
  const NetworkModel model = two_cluster(10.0, 0.5);
  const std::vector<TransferRequest> reqs = {{0, 1, 0.0, 2.0}};
  const TransferPlan plan = simulate_transfers(model, reqs);
  EXPECT_DOUBLE_EQ(plan.results[0].finish, 2.5);
}

TEST(FairShare, Deterministic) {
  const NetworkModel model = two_cluster(77.5, 0.003);
  std::vector<TransferRequest> reqs;
  for (int i = 0; i < 20; ++i)
    reqs.push_back({0, 1, 10.0 + 3.0 * i, 0.25 * (i % 7)});
  const TransferPlan a = simulate_transfers(model, reqs);
  const TransferPlan b = simulate_transfers(model, reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(a.results[i].finish, b.results[i].finish);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.link_utilization, b.link_utilization);
}

TEST(FairShare, TerminatesAtLargeSimulatedTimes) {
  // Regression: collection batches start at O(1e4) simulated seconds, where
  // ulp(now) * share exceeds any fixed remaining-bytes epsilon. Retirement
  // must key off projected finish times or the event loop spins forever.
  const NetworkModel model = two_cluster(333.3333333333, 0.008);
  std::vector<TransferRequest> reqs;
  for (int i = 0; i < 8; ++i)
    reqs.push_back({1, 0, 93.3333333333, 30572.123456789 + 0.001 * i});
  const TransferPlan plan = simulate_transfers(model, reqs);
  const double total = 8 * 93.3333333333;
  EXPECT_GT(plan.makespan, 30572.0);
  EXPECT_LT(plan.makespan, 30572.123456789 + 0.008 + 0.008 +
                               total / 333.3333333333 + 1.0);
  for (const TransferResult& r : plan.results)
    EXPECT_GT(r.finish, 30572.0);
}

TEST(FairShare, UtilizationIsOneForBackToBackSaturation) {
  // One link, no latency, transfers arriving exactly when capacity frees
  // up: the used link is busy the whole span.
  const NetworkModel model = two_cluster(100.0, 0.0);
  const std::vector<TransferRequest> reqs = {{0, 1, 100.0, 0.0},
                                             {0, 1, 100.0, 0.0}};
  const TransferPlan plan = simulate_transfers(model, reqs);
  EXPECT_NEAR(plan.makespan, 2.0, 1e-12);
  EXPECT_NEAR(plan.link_utilization, 1.0, 1e-9);
}

}  // namespace
}  // namespace oagrid::net
