/// \file test_trace.cpp
/// \brief TraceBuffer bounded-append semantics plus Span / ScopedTimer RAII
/// behaviour against a deterministic ManualClock.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oagrid::obs {
namespace {

TEST(TraceBuffer, StoresCompleteEventsVerbatim) {
  TraceBuffer buffer;
  TraceEvent event;
  event.name = "main s0 m3";
  event.category = "main";
  event.pid = kSimPid;
  event.track = 2;
  event.ts_us = 100.0;
  event.dur_us = 1177.0;
  buffer.emit_complete(event);

  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "main s0 m3");
  EXPECT_EQ(events[0].category, "main");
  EXPECT_EQ(events[0].pid, kSimPid);
  EXPECT_EQ(events[0].track, 2);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 100.0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 1177.0);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(TraceBuffer, DropsAndCountsPastCapacity) {
  TraceBuffer buffer(3);
  for (int i = 0; i < 10; ++i) {
    TraceEvent event;
    event.name = "e" + std::to_string(i);
    buffer.emit_complete(event);
  }
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.dropped(), 7u);
  // The first events win; later ones are the dropped ones.
  EXPECT_EQ(buffer.events()[2].name, "e2");
}

TEST(TraceBuffer, ClearEmptiesEventsDropsAndTrackNames) {
  TraceBuffer buffer(2);
  buffer.set_track_name(kSimPid, 0, "group 0");
  for (int i = 0; i < 5; ++i) buffer.emit_complete(TraceEvent{});
  buffer.clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
  EXPECT_TRUE(buffer.track_names().empty());
}

TEST(TraceBuffer, TrackNamesKeyedByPidAndTrack) {
  TraceBuffer buffer;
  buffer.set_track_name(kWallPid, 0, "client");
  buffer.set_track_name(kSimPid, 0, "group 0");
  const auto names = buffer.track_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names.at({kWallPid, 0}), "client");
  EXPECT_EQ(names.at({kSimPid, 0}), "group 0");
}

TEST(TraceBuffer, ConcurrentEmittersLoseNothingBelowCapacity) {
  TraceBuffer buffer(1u << 16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&buffer] {
      for (int i = 0; i < kPerThread; ++i) buffer.emit_complete(TraceEvent{});
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(buffer.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(Span, RecordsIntervalOnDestruction) {
  TraceBuffer buffer;
  ManualClock clock(1000.0);
  {
    Span span(&buffer, "step 4", "middleware", clock);
    clock.advance(250.0);
  }
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "step 4");
  EXPECT_EQ(events[0].category, "middleware");
  EXPECT_EQ(events[0].pid, kWallPid);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 1000.0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 250.0);
  EXPECT_EQ(events[0].depth, 0);
}

TEST(Span, NestedSpansTrackDepthAndUnwindInOrder) {
  TraceBuffer buffer;
  ManualClock clock;
  {
    Span outer(&buffer, "outer", "", clock);
    clock.advance(10.0);
    {
      Span inner(&buffer, "inner", "", clock);
      clock.advance(5.0);
    }
    clock.advance(10.0);
  }
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes (and is emitted) first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 10.0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 5.0);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_DOUBLE_EQ(events[1].dur_us, 25.0);
  // Depth resets after full unwind: a fresh span is top-level again.
  { Span after(&buffer, "after", "", clock); }
  EXPECT_EQ(buffer.events()[2].depth, 0);
}

TEST(Span, NullBufferIsANoOp) {
  ManualClock clock;
  { Span span(nullptr, "ignored", "", clock); }
  // Nothing to assert beyond "does not crash"; also: a null-buffer span
  // must not disturb the depth bookkeeping of a live one.
  TraceBuffer buffer;
  {
    Span dead(nullptr, "dead", "", clock);
    Span live(&buffer, "live", "", clock);
  }
  ASSERT_EQ(buffer.events().size(), 1u);
  EXPECT_EQ(buffer.events()[0].depth, 0);
}

TEST(ScopedTimer, RecordsElapsedMicroseconds) {
  Histogram histogram;
  ManualClock clock(500.0);
  {
    ScopedTimer timer(&histogram, clock);
    clock.advance(123.0);
  }
  const HistogramSnapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 123.0);
  EXPECT_DOUBLE_EQ(snap.min, 123.0);
}

TEST(ScopedTimer, NullHistogramIsANoOp) {
  ManualClock clock;
  { ScopedTimer timer(nullptr, clock); }  // must not crash
  clock.advance(1.0);
}

}  // namespace
}  // namespace oagrid::obs
