/// \file test_obs_integration.cpp
/// \brief End-to-end check of the observability wiring: a real middleware
/// campaign (client -> master agent -> SeDs, as in `oagrid_cli grid`) with
/// obs enabled must leave mailbox wait-time samples, per-cluster utilization
/// gauges and a Chrome trace that passes structural JSON validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "appmodel/ensemble.hpp"
#include "middleware/client.hpp"
#include "middleware/master_agent.hpp"
#include "obs/obs.hpp"
#include "platform/profiles.hpp"

namespace oagrid {
namespace {

/// Minimal structural validation: balanced braces/brackets outside strings,
/// required framing, no dangling comma before the closing bracket.
void expect_valid_chrome_json(const std::string& text) {
  ASSERT_TRUE(text.rfind("{\"traceEvents\":[", 0) == 0) << text.substr(0, 40);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
  EXPECT_EQ(text.find(",]"), std::string::npos);
  EXPECT_EQ(text.find(",}"), std::string::npos);
}

TEST(ObsIntegration, GridCampaignEmitsMetricsAndParseableTrace) {
  obs::set_enabled(true);
  obs::reset();
  {
    const platform::Grid grid = platform::make_builtin_grid(24).prefix(3);
    middleware::MasterAgent agent(grid);
    middleware::Client client(agent);
    const middleware::CampaignResult result =
        client.submit(appmodel::Ensemble{4, 12}, sched::Heuristic::kKnapsack);
    EXPECT_GT(result.makespan, 0.0);
  }  // SeD threads join here, flushing utilization gauges

  // Mailbox instrumentation saw traffic and produced a wait distribution.
  const auto snaps = obs::metrics().snapshot();
  const auto find = [&](const std::string& name) {
    const auto it =
        std::find_if(snaps.begin(), snaps.end(),
                     [&](const auto& s) { return s.name == name; });
    return it == snaps.end() ? nullptr : &*it;
  };
  const auto* wait = find("middleware.mailbox.wait_us");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->kind, obs::MetricSnapshot::Kind::kHistogram);
  EXPECT_GT(wait->histogram.count, 0u);
  EXPECT_GE(wait->histogram.quantile(0.95), wait->histogram.quantile(0.5));

  const auto* sends = find("middleware.mailbox.sends");
  ASSERT_NE(sends, nullptr);
  EXPECT_GT(sends->value, 0.0);

  // Every cluster that executed scenarios reported a utilization in (0, 1].
  int utilization_gauges = 0;
  for (const auto& snap : snaps) {
    if (snap.name.rfind("sim.cluster.", 0) == 0 &&
        snap.name.find(".utilization") != std::string::npos) {
      ++utilization_gauges;
      EXPECT_GT(snap.value, 0.0) << snap.name;
      EXPECT_LE(snap.value, 1.0) << snap.name;
    }
  }
  EXPECT_GT(utilization_gauges, 0);

  // The DES recorded work and the trace holds both timelines.
  const auto* events = find("sim.events");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->value, 0.0);
  EXPECT_GT(obs::trace_buffer().size(), 0u);
  EXPECT_EQ(obs::trace_buffer().dropped(), 0u);

  bool has_wall = false;
  bool has_sim = false;
  for (const auto& event : obs::trace_buffer().events()) {
    has_wall = has_wall || event.pid == obs::kWallPid;
    has_sim = has_sim || event.pid == obs::kSimPid;
  }
  EXPECT_TRUE(has_wall);  // middleware step spans
  EXPECT_TRUE(has_sim);   // DES mains/posts

  std::ostringstream os;
  obs::write_chrome_trace(os, obs::trace_buffer());
  expect_valid_chrome_json(os.str());

  obs::set_enabled(false);
  obs::reset();
}

TEST(ObsIntegration, DisabledObsRecordsNothing) {
  obs::set_enabled(false);
  obs::reset();
  {
    const platform::Grid grid = platform::make_builtin_grid(24).prefix(2);
    middleware::MasterAgent agent(grid);
    middleware::Client client(agent);
    (void)client.submit(appmodel::Ensemble{2, 6},
                        sched::Heuristic::kKnapsack);
  }
  // Metric names may already be registered (registration survives reset by
  // design), but nothing may have been recorded while disabled.
  for (const auto& snap : obs::metrics().snapshot()) {
    EXPECT_DOUBLE_EQ(snap.value, 0.0) << snap.name;
    EXPECT_EQ(snap.histogram.count, 0u) << snap.name;
  }
  EXPECT_EQ(obs::trace_buffer().size(), 0u);
}

}  // namespace
}  // namespace oagrid
