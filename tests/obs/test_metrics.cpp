/// \file test_metrics.cpp
/// \brief Counter / Gauge / Histogram / MetricsRegistry unit tests: bucket
/// boundary arithmetic, quantile estimation error bounds, and exactness of
/// the sharded counters under real thread contention.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace oagrid::obs {
namespace {

TEST(HistogramBuckets, UnderflowCatchesZeroNegativesAndNan) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-1e300), 0);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0);
  // Below the 2^-16 floor but positive: still underflow.
  EXPECT_EQ(Histogram::bucket_index(std::exp2(Histogram::kMinExponent) / 2.0),
            0);
}

TEST(HistogramBuckets, FirstLogBucketStartsAtTheFloor) {
  const double floor_value = std::exp2(Histogram::kMinExponent);
  EXPECT_EQ(Histogram::bucket_index(floor_value), 1);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(1), floor_value);
}

TEST(HistogramBuckets, OverflowCatchesHugeValuesAndInfinity) {
  EXPECT_EQ(Histogram::bucket_index(std::exp2(Histogram::kMaxExponent)),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::infinity()),
            Histogram::kBucketCount - 1);
  // Just below the ceiling lands in the last regular bucket.
  EXPECT_EQ(Histogram::bucket_index(std::exp2(Histogram::kMaxExponent) * 0.99),
            Histogram::kBucketCount - 2);
}

TEST(HistogramBuckets, IndexIsMonotonicAndConsistentWithLowerBounds) {
  int previous = 0;
  for (double v = std::exp2(Histogram::kMinExponent); v < 1e14; v *= 1.17) {
    const int index = Histogram::bucket_index(v);
    EXPECT_GE(index, previous);  // non-decreasing in the value
    previous = index;
    // The value must lie in [lower_bound(index), lower_bound(index + 1)).
    EXPECT_GE(v, Histogram::bucket_lower_bound(index) * (1 - 1e-12));
    EXPECT_LT(v, Histogram::bucket_lower_bound(index + 1) * (1 + 1e-12));
  }
}

TEST(HistogramBuckets, EveryPowerOfTwoOpensANewOctave) {
  // 4 sub-buckets per octave: consecutive powers of two differ by exactly 4.
  for (int e = Histogram::kMinExponent; e < Histogram::kMaxExponent - 1; ++e) {
    const int a = Histogram::bucket_index(std::exp2(e));
    const int b = Histogram::bucket_index(std::exp2(e + 1));
    EXPECT_EQ(b - a, Histogram::kSubBuckets) << "octave " << e;
  }
}

TEST(Histogram, ExactStatsAndEstimatedQuantiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.sum, 500500.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);

  // Quantile estimates are bucket-midpoint approximations: relative error
  // is bounded by half an octave step, 2^(1/8) - 1 < 9.1%, on either side
  // of the bucket geometric mean; allow the full bucket width to be safe.
  const double tol = std::exp2(1.0 / Histogram::kSubBuckets);  // ~1.19x
  for (const auto& [q, exact] :
       {std::pair{0.5, 500.0}, {0.95, 950.0}, {0.99, 990.0}}) {
    const double estimate = snap.quantile(q);
    EXPECT_GE(estimate, exact / tol) << "q=" << q;
    EXPECT_LE(estimate, exact * tol) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);   // clamped to min
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1000.0);  // clamped to max
}

TEST(Histogram, SingleValueQuantilesCollapseToIt) {
  Histogram h;
  h.record(42.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), snap.quantile(0.99));
  EXPECT_GE(snap.quantile(0.5), snap.min);
  EXPECT_LE(snap.quantile(0.5), snap.max);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  const HistogramSnapshot snap = Histogram().snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
}

TEST(Histogram, ResetRestoresTheEmptyState) {
  Histogram h;
  h.record(3.0);
  h.record(7.0);
  h.reset();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  h.record(5.0);
  EXPECT_DOUBLE_EQ(h.snapshot().min, 5.0);
  EXPECT_DOUBLE_EQ(h.snapshot().max, 5.0);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Histogram, ConcurrentRecordsKeepExactCountSumMinMax) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<double>(t * kPerThread + i + 1));
    });
  for (auto& thread : threads) thread.join();
  const HistogramSnapshot snap = h.snapshot();
  constexpr double n = kThreads * kPerThread;
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(n));
  EXPECT_DOUBLE_EQ(snap.sum, n * (n + 1) / 2);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, n);
}

TEST(Gauge, SetAddAndReset) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsRegistry, ReturnsStableReferencesPerName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter("x").value(), 3u);
  EXPECT_NE(&registry.counter("x"), &registry.counter("y"));
}

TEST(MetricsRegistry, SnapshotIsSortedByNameAcrossKinds) {
  MetricsRegistry registry;
  registry.histogram("c.lat").record(1.0);
  registry.counter("a.events").add(2);
  registry.gauge("b.depth").set(4.0);
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "a.events");
  EXPECT_EQ(snaps[0].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(snaps[0].value, 2.0);
  EXPECT_EQ(snaps[1].name, "b.depth");
  EXPECT_EQ(snaps[1].kind, MetricSnapshot::Kind::kGauge);
  EXPECT_EQ(snaps[2].name, "c.lat");
  EXPECT_EQ(snaps[2].kind, MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(snaps[2].histogram.count, 1u);
}

TEST(MetricsRegistry, ResetZeroesEverythingButKeepsReferencesValid) {
  MetricsRegistry registry;
  Counter& c = registry.counter("n");
  c.add(9);
  registry.gauge("g").set(1.0);
  registry.histogram("h").record(8.0);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 0.0);
  EXPECT_EQ(registry.histogram("h").snapshot().count, 0u);
  c.add(1);  // the old reference still records
  EXPECT_EQ(registry.counter("n").value(), 1u);
}

TEST(ThreadShard, StaysWithinBoundsAndIsStablePerThread) {
  const std::size_t first = thread_shard(8);
  EXPECT_LT(first, 8u);
  EXPECT_EQ(thread_shard(8), first);  // same thread, same slot
}

}  // namespace
}  // namespace oagrid::obs
