/// \file test_exporters.cpp
/// \brief Golden-output tests for the three exporters. The inputs are built
/// deterministically (fixed values, single-threaded), so the serialized
/// bytes are stable and any format drift is caught exactly.

#include <gtest/gtest.h>

#include <sstream>

#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oagrid::obs {
namespace {

TEST(JsonEscape, HandlesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ChromeTrace, GoldenOutput) {
  TraceBuffer buffer;
  buffer.set_track_name(kSimPid, 0, "group 0");
  TraceEvent event;
  event.name = "s0 m1";
  event.category = "main";
  event.pid = kSimPid;
  event.track = 0;
  event.ts_us = 1.5;
  event.dur_us = 2.0;
  buffer.emit_complete(event);

  std::ostringstream os;
  write_chrome_trace(os, buffer);
  EXPECT_EQ(os.str(),
            "{\"traceEvents\":["
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
            "\"args\":{\"name\":\"simulated time (1 us = 1 s)\"}},\n"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
            "\"args\":{\"name\":\"group 0\"}},\n"
            "{\"name\":\"s0 m1\",\"cat\":\"main\",\"ph\":\"X\",\"pid\":2,"
            "\"tid\":0,\"ts\":1.5,\"dur\":2,\"args\":{\"depth\":0}}"
            "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ChromeTrace, EmptyBufferIsStillValidJson) {
  TraceBuffer buffer;
  std::ostringstream os;
  write_chrome_trace(os, buffer);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ChromeTrace, WallTimelineMetadataOnlyWhenUsed) {
  TraceBuffer buffer;
  TraceEvent event;
  event.name = "w";
  event.pid = kWallPid;
  buffer.emit_complete(event);
  std::ostringstream os;
  write_chrome_trace(os, buffer);
  EXPECT_NE(os.str().find("wall clock (us)"), std::string::npos);
  EXPECT_EQ(os.str().find("simulated time"), std::string::npos);
}

TEST(Prometheus, GoldenOutput) {
  MetricsRegistry registry;
  registry.histogram("lat").record(4.0);
  registry.gauge("queue.depth").set(2.5);
  registry.counter("requests").add(3);

  std::ostringstream os;
  write_prometheus(os, registry);
  // Sorted by name; dots sanitized to underscores; single-value histogram
  // quantiles clamp to that value.
  EXPECT_EQ(os.str(),
            "# TYPE oagrid_lat summary\n"
            "oagrid_lat{quantile=\"0.5\"} 4\n"
            "oagrid_lat{quantile=\"0.95\"} 4\n"
            "oagrid_lat{quantile=\"0.99\"} 4\n"
            "oagrid_lat_sum 4\n"
            "oagrid_lat_count 1\n"
            "# TYPE oagrid_queue_depth gauge\n"
            "oagrid_queue_depth 2.5\n"
            "# TYPE oagrid_requests counter\n"
            "oagrid_requests 3\n");
}

TEST(MetricsTable, OneRowPerMetricWithQuantileColumns) {
  MetricsRegistry registry;
  registry.counter("sim.events").add(42);
  registry.histogram("wait_us").record(8.0);
  registry.histogram("wait_us").record(8.0);

  std::ostringstream os;
  write_metrics_table(os, registry);
  const std::string text = os.str();

  // Header plus one line per metric (plus the separator rule).
  EXPECT_NE(text.find("metric"), std::string::npos);
  EXPECT_NE(text.find("value/sum"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
  EXPECT_NE(text.find("sim.events"), std::string::npos);
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("wait_us"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
  EXPECT_NE(text.find("16"), std::string::npos);  // sum of the two records
}

}  // namespace
}  // namespace oagrid::obs
