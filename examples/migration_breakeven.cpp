/// \file migration_breakeven.cpp
/// \brief Where does scenario migration stop paying for itself?
///
/// The paper forbids migration because shipping a scenario's restart file
/// between sites was an unmodeled cost. With the net subsystem that cost is
/// simulated, so the question becomes quantitative: sweep the inter-cluster
/// bandwidth and watch the migrate-with-state policy fall back to static
/// behavior as the same restart file gets slower and slower to move.
///
///   $ ./migration_breakeven [resources-per-cluster] [scenarios] [months]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "net/network.hpp"
#include "platform/profiles.hpp"
#include "sim/fluid_grid.hpp"

int main(int argc, char** argv) {
  using namespace oagrid;

  const ProcCount resources = argc > 1 ? std::atoi(argv[1]) : 25;
  const Count scenarios = argc > 2 ? std::atoll(argv[2]) : 10;
  const Count months = argc > 3 ? std::atoll(argv[3]) : 120;

  const platform::Grid grid = platform::make_builtin_grid(resources);
  const appmodel::Ensemble ensemble{scenarios, months};
  const int clusters = static_cast<int>(grid.cluster_count());

  // A scenario dragging a ~1 GB state (restart + accumulated diagnostics)
  // across a drifting grid; averaged over a few drift seeds.
  const double state_mb = 1024.0;
  const std::vector<double> bandwidths_mbps = {50.0, 5.0, 0.5, 0.05, 0.005};
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};

  std::cout << "Grid: " << clusters << " clusters x " << resources
            << " procs, " << scenarios << " scenarios x " << months
            << " months, " << state_mb << " MB migrated per move\n\n";

  double static_mean = 0.0;
  for (const std::uint64_t seed : seeds) {
    sim::DriftModel drift;
    drift.sigma = 0.25;
    drift.epoch_length = 4.0 * 3600.0;
    drift.seed = seed;
    static_mean += sim::simulate_dynamic_grid(grid, ensemble,
                                              sim::GridPolicy::kStatic, drift)
                       .makespan;
  }
  static_mean /= static_cast<double>(seeds.size());

  TableWriter table({"inter bw [MB/s]", "ship 1 GB", "migrations/run",
                     "makespan", "vs static"});
  for (const double bw : bandwidths_mbps) {
    const auto network = net::uniform_network(
        clusters, net::LinkSpec{bw, 0.01},
        net::LinkSpec{1000.0, 0.0001});
    double makespan_mean = 0.0;
    double migrations_mean = 0.0;
    for (const std::uint64_t seed : seeds) {
      sim::DriftModel drift;
      drift.sigma = 0.25;
      drift.epoch_length = 4.0 * 3600.0;
      drift.seed = seed;
      drift.network = network;
      drift.migration_state_mb = state_mb;
      const auto run = sim::simulate_dynamic_grid(
          grid, ensemble, sim::GridPolicy::kMigrateWithState, drift);
      makespan_mean += run.makespan;
      migrations_mean += static_cast<double>(run.migrations);
    }
    makespan_mean /= static_cast<double>(seeds.size());
    migrations_mean /= static_cast<double>(seeds.size());

    const double gain = 100.0 * (static_mean - makespan_mean) / static_mean;
    table.add_row({fmt(bw, 3),
                   fmt_duration(network.transfer_time(0, 1, state_mb)),
                   fmt(migrations_mean, 1), fmt_duration(makespan_mean),
                   (gain >= 0 ? "+" : "") + fmt(gain, 2) + " %"});
  }
  std::cout << "Static placement (the paper's rule): "
            << fmt_duration(static_mean) << " mean makespan\n\n";
  table.print(std::cout);
  std::cout
      << "\nFat links migrate freely and beat the static placement; as the\n"
         "same restart file crawls over ever-thinner links the scheduler\n"
         "prices the move, migrates less, and converges back to the paper's\n"
         "static behavior — the break-even is a bandwidth, not a policy.\n";
  return 0;
}
