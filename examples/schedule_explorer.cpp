/// \file schedule_explorer.cpp
/// \brief Interactive-ish exploration of one scheduling decision: prints the
/// closed-form evaluation of every uniform group size (the §4.1 table), each
/// heuristic's grouping, and an ASCII Gantt chart of the knapsack schedule on
/// a small workload — the shapes of the paper's Figures 3-6, live.
///
///   $ ./schedule_explorer [resources] [scenarios] [months]

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sched/makespan_model.hpp"
#include "sim/ensemble_sim.hpp"

int main(int argc, char** argv) {
  using namespace oagrid;

  const ProcCount resources = argc > 1 ? std::atoi(argv[1]) : 53;
  const Count scenarios = argc > 2 ? std::atoll(argv[2]) : 10;
  const Count months = argc > 3 ? std::atoll(argv[3]) : 6;

  const platform::Cluster cluster =
      platform::make_builtin_cluster(1, resources);
  const appmodel::Ensemble ensemble{scenarios, months};

  // Closed-form table, one row per uniform G (the §4.1 heuristic's search).
  std::cout << "Closed-form makespan (Equations 1-5) per uniform group size,"
            << " R=" << resources << ", NS=" << scenarios << ", NM=" << months
            << ":\n";
  TableWriter table({"G", "nbmax", "R1", "R2", "regime", "makespan [s]"});
  for (ProcCount g = cluster.min_group();
       g <= cluster.max_group() && g <= resources; ++g) {
    const auto e = sched::evaluate_uniform_grouping(cluster, ensemble, g);
    table.add_row({std::to_string(g), std::to_string(e.nbmax),
                   std::to_string(e.r1), std::to_string(e.r2),
                   to_string(e.regime), fmt(e.makespan, 0)});
  }
  table.print(std::cout);

  // Every heuristic's decision and simulated makespan.
  std::cout << "\nHeuristic decisions:\n";
  TableWriter decisions({"heuristic", "grouping", "simulated makespan [s]"});
  for (const auto h :
       {sched::Heuristic::kBasic, sched::Heuristic::kRedistribute,
        sched::Heuristic::kAllForMain, sched::Heuristic::kKnapsack}) {
    const sched::GroupSchedule schedule =
        sched::make_schedule(h, cluster, ensemble);
    const sim::SimResult result =
        sim::simulate_ensemble(cluster, schedule, ensemble);
    decisions.add_row(
        {to_string(h), schedule.describe(), fmt(result.makespan, 0)});
  }
  decisions.print(std::cout);

  // Gantt of the knapsack schedule (kept small by the default NM=6).
  sim::SimOptions options;
  options.capture_trace = true;
  const sched::GroupSchedule schedule =
      sched::knapsack_grouping(cluster, ensemble);
  const sim::SimResult result =
      sim::simulate_ensemble(cluster, schedule, ensemble, options);
  std::cout << "\nKnapsack schedule Gantt (" << schedule.describe() << "):\n";
  std::cout << result.trace.render_gantt(100);
  return 0;
}
