/// \file generic_workflow.cpp
/// \brief The paper's future-work feature in action: scheduling a *different*
/// application with the generic moldable-chain scheduler.
///
/// The synthetic application is a satellite-imagery pipeline: each daily
/// batch (one DAG instance) ingests (rigid), georeferences (moldable),
/// mosaics (moldable), then publishes thumbnails + archives (rigid tail).
/// Several independent satellites (chains) run for a year of daily batches.
///
///   $ ./generic_workflow [resources] [satellites] [days]

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "sched/generic_chain.hpp"
#include "sim/ensemble_sim.hpp"

int main(int argc, char** argv) {
  using namespace oagrid;

  const ProcCount resources = argc > 1 ? std::atoi(argv[1]) : 48;
  const Count satellites = argc > 2 ? std::atoll(argv[2]) : 6;
  const Count days = argc > 3 ? std::atoll(argv[3]) : 90;

  // Template DAG: ingest -> georef -> mosaic -> {thumbs, archive}.
  dag::Dag tmpl;
  dag::TaskSpec ingest;
  ingest.name = "ingest";
  ingest.ref_duration = 30;
  const auto t_ingest = tmpl.add_task(ingest);
  dag::TaskSpec georef;
  georef.name = "georef";
  georef.shape = dag::TaskShape::kMoldable;
  georef.ref_duration = 600;
  georef.min_procs = 2;
  georef.max_procs = 16;
  const auto t_georef = tmpl.add_task(georef);
  dag::TaskSpec mosaic = georef;
  mosaic.name = "mosaic";
  mosaic.ref_duration = 400;
  const auto t_mosaic = tmpl.add_task(mosaic);
  dag::TaskSpec thumbs;
  thumbs.name = "thumbs";
  thumbs.ref_duration = 45;
  const auto t_thumbs = tmpl.add_task(thumbs);
  dag::TaskSpec archive;
  archive.name = "archive";
  archive.ref_duration = 75;
  const auto t_archive = tmpl.add_task(archive);
  tmpl.add_edge(t_ingest, t_georef);
  tmpl.add_edge(t_georef, t_mosaic);
  tmpl.add_edge(t_mosaic, t_thumbs);
  tmpl.add_edge(t_mosaic, t_archive);
  tmpl.freeze();

  // Each day's mosaic feeds the next day's georeferencing (base map update).
  sched::ChainWorkload workload;
  workload.template_dag = tmpl;
  workload.links = {dag::CrossLink{t_mosaic, t_georef, 800.0}};
  workload.chains = satellites;
  workload.instances = days;

  // Moldable stages scale with 85% parallel efficiency.
  const sched::MoldableDuration duration = [&tmpl](dag::NodeId v,
                                                   ProcCount p) -> Seconds {
    const dag::TaskSpec& spec = tmpl.task(v);
    if (spec.shape != dag::TaskShape::kMoldable) return spec.ref_duration;
    const double speedup =
        static_cast<double>(p) / (1.0 + 0.15 * static_cast<double>(p - 1));
    return spec.ref_duration / speedup;
  };

  const sched::GenericChainScheduler scheduler(workload, duration, 2, 16);

  std::cout << "Template analysis:\n";
  std::cout << "  tail (pooled): ";
  for (const auto v : scheduler.tail_nodes())
    std::cout << tmpl.task(v).name << " ";
  std::cout << "(" << scheduler.tail_time() << " s per instance)\n";
  TableWriter body({"group size", "body time [s]", "throughput [inst/h]"});
  for (ProcCount g = 2; g <= 16; g += 2)
    body.add_row({std::to_string(g), fmt(scheduler.body_time(g), 1),
                  fmt(3600.0 / scheduler.body_time(g), 2)});
  body.print(std::cout);

  const sched::GroupSchedule schedule = scheduler.schedule(resources);
  std::cout << "\nKnapsack grouping for " << resources
            << " processors: " << schedule.describe() << "\n";

  // Execute on the equivalent virtual cluster.
  const platform::Cluster virt =
      scheduler.virtual_cluster("imaging-farm", resources);
  const appmodel::Ensemble ensemble{satellites, days};
  const sim::SimResult result =
      sim::simulate_ensemble(virt, schedule, ensemble);
  std::cout << "Simulated campaign: " << satellites << " satellites x " << days
            << " days -> makespan " << fmt_duration(result.makespan) << " ("
            << fmt(result.makespan, 0) << " s), group utilization "
            << fmt(100.0 * result.group_utilization, 1) << "%\n";
  return 0;
}
