/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the library: describe a cluster, let the
/// knapsack heuristic pick the processor groups, simulate the campaign, and
/// read the results.
///
///   $ ./quickstart [resources] [scenarios] [months]

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"

int main(int argc, char** argv) {
  using namespace oagrid;

  const ProcCount resources = argc > 1 ? std::atoi(argv[1]) : 53;
  const Count scenarios = argc > 2 ? std::atoll(argv[2]) : 10;
  const Count months = argc > 3 ? std::atoll(argv[3]) : 150;

  // 1. A platform: one Grid'5000-like cluster (benchmarked time tables for
  //    the moldable main task and the fused post-processing task).
  const platform::Cluster cluster =
      platform::make_builtin_cluster(1, resources);
  std::cout << "Cluster '" << cluster.name() << "' with "
            << cluster.resources() << " processors\n";
  std::cout << "  main task: " << cluster.main_time(cluster.min_group())
            << " s on " << cluster.min_group() << " procs, "
            << cluster.main_time(cluster.max_group()) << " s on "
            << cluster.max_group() << " procs; post task "
            << cluster.post_time() << " s\n\n";

  // 2. A workload: NS independent climate scenarios of NM months each.
  const appmodel::Ensemble ensemble{scenarios, months};
  std::cout << "Workload: " << ensemble.scenarios << " scenarios x "
            << ensemble.months << " months = " << ensemble.total_tasks()
            << " (main, post) task pairs\n\n";

  // 3. Compare the paper's four heuristics.
  TableWriter table({"heuristic", "grouping", "makespan", "human", "gain"});
  Seconds basic_makespan = 0.0;
  for (const auto h :
       {sched::Heuristic::kBasic, sched::Heuristic::kRedistribute,
        sched::Heuristic::kAllForMain, sched::Heuristic::kKnapsack}) {
    const sched::GroupSchedule schedule =
        sched::make_schedule(h, cluster, ensemble);
    const sim::SimResult result =
        sim::simulate_ensemble(cluster, schedule, ensemble);
    if (h == sched::Heuristic::kBasic) basic_makespan = result.makespan;
    const double gain =
        100.0 * (basic_makespan - result.makespan) / basic_makespan;
    table.add_row({to_string(h), schedule.describe(), fmt(result.makespan, 0),
                   fmt_duration(result.makespan), fmt(gain, 2) + "%"});
  }
  table.print(std::cout);
  return 0;
}
