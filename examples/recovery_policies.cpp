/// \file recovery_policies.cpp
/// \brief What should a killed scenario do? The paper's Grid'5000 campaigns
/// rewound dead scenarios to their last monthly restart file by hand; the
/// fault subsystem makes the choice a policy. This example sweeps the MTBF
/// from "comfortable" down to "hostile" and compares the three recovery
/// policies on the same seeded failure stream:
///
///   * wait        — stay pinned to the failed node set until it is repaired;
///   * reschedule  — re-enter the dispatch pool immediately (free);
///   * migrate     — reschedule, paying a restart-staging stall up front.
///
///   $ ./recovery_policies [resources] [scenarios] [months]

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "fault/checkpoint.hpp"
#include "fault/failure.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"

int main(int argc, char** argv) {
  using namespace oagrid;

  const ProcCount resources = argc > 1 ? std::atoi(argv[1]) : 34;
  const Count scenarios = argc > 2 ? std::atoll(argv[2]) : 8;
  const Count months = argc > 3 ? std::atoll(argv[3]) : 48;

  const auto cluster = platform::make_builtin_cluster(1, resources);
  const appmodel::Ensemble ensemble{scenarios, months};
  const auto schedule = sched::knapsack_grouping(cluster, ensemble);

  const sim::SimResult clean =
      sim::simulate_ensemble(cluster, schedule, ensemble);
  std::cout << "Failure-free baseline on " << cluster.name() << " ("
            << schedule.describe() << "): " << fmt_duration(clean.makespan)
            << "\n\n";

  // Restart staging priced like shipping the ~120 MB restart file over a
  // shared WAN — the cost kMigrateWithState pays that the others do not.
  const Seconds staging = 180.0;
  const Seconds mttr = 1800.0;

  for (const double mtbf_hours : {24.0, 8.0, 3.0}) {
    const auto model = fault::FailureModel::uniform_exponential(
        1, mtbf_hours * 3600.0, mttr, /*seed=*/11);

    std::cout << "MTBF " << mtbf_hours << " h, MTTR " << fmt_duration(mttr)
              << ":\n";
    TableWriter table({"policy", "makespan", "vs clean %", "kills",
                       "lost work", "downtime"});
    for (const fault::RecoveryPolicy policy :
         {fault::RecoveryPolicy::kWaitForRepair,
          fault::RecoveryPolicy::kRescheduleInCluster,
          fault::RecoveryPolicy::kMigrateWithState}) {
      sim::SimOptions options;
      options.fault.model = &model;
      options.fault.recovery = policy;
      options.fault.checkpoint_months = 1;  // the paper's monthly restarts
      if (policy == fault::RecoveryPolicy::kMigrateWithState)
        options.fault.migrate_staging = staging;
      const sim::SimResult r =
          sim::simulate_ensemble(cluster, schedule, ensemble, options);

      table.add_row(
          {fault::to_string(policy), fmt_duration(r.makespan),
           fmt(100.0 * (r.makespan - clean.makespan) / clean.makespan, 1),
           std::to_string(r.fault.kills), fmt_duration(r.fault.lost_seconds),
           fmt_duration(r.fault.downtime_seconds)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // The knob the policies share: how often a restart file is kept. The
  // Young/Daly cadence balances checkpoint cost against expected rework.
  const Seconds month_seconds = clean.makespan / static_cast<double>(
                                    scenarios * months);
  std::cout << "Young/Daly cadence for a 60 s checkpoint at MTBF 8 h: every "
            << fault::optimal_checkpoint_months(month_seconds, 60.0,
                                                8.0 * 3600.0,
                                                static_cast<MonthIndex>(months))
            << " month(s)\n";
  std::cout << "\nReading: with cheap repairs, waiting loses little; as the "
               "MTBF shrinks, rescheduling keeps groups busy, and migration "
               "only wins once its staging stall undercuts the queue of "
               "pending repairs.\n";
  return 0;
}
