/// \file ensemble_prediction.cpp
/// \brief The paper's experiment, end to end and for real: run an ensemble
/// of coupled ocean-atmosphere scenarios with varying cloud parametrization
/// (§1-2), benchmark the pipeline on this machine (the authors' "times have
/// been obtained by performing benchmarks"), and schedule the full-scale
/// campaign with the knapsack heuristic.
///
///   $ ./ensemble_prediction [members] [months] [resources]

#include <cstdlib>
#include <iostream>

#include "climate/calibration.hpp"
#include "climate/scenario_runner.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"

int main(int argc, char** argv) {
  using namespace oagrid;

  const Count members = argc > 1 ? std::atoll(argv[1]) : 5;
  const int months = argc > 2 ? std::atoi(argv[2]) : 120;
  const ProcCount resources = argc > 3 ? std::atoi(argv[3]) : 32;

  // --- Part 1: the science. Run the ensemble through the real pipeline. ---
  std::cout << "Running " << members << " scenarios x " << months
            << " months through the coupled model (cloud feedback varied per "
               "member)...\n\n";
  std::vector<double> feedbacks(static_cast<std::size_t>(members));
  std::vector<double> warmings(static_cast<std::size_t>(members));
  std::vector<climate::ScenarioResult> results(
      static_cast<std::size_t>(members));
  for (Count i = 0; i < members; ++i)
    feedbacks[static_cast<std::size_t>(i)] =
        0.9 * static_cast<double>(i) /
        static_cast<double>(std::max<Count>(1, members - 1));

  parallel_for(0, static_cast<std::size_t>(members), [&](std::size_t i) {
    climate::ScenarioConfig config;
    config.model.cloud_feedback = feedbacks[i];
    config.months = months;
    config.ghg_ramp = 0.03;  // the 21st-century ramp
    results[i] = climate::run_scenario(config);
    // Greenhouse response isolated from spin-up drift: forced minus control.
    warmings[i] = climate::warming_of(feedbacks[i], months);
  });

  TableWriter science({"member", "cloud feedback", "GHG warming [C]",
                       "final ice fraction", "diag raw [KB]", "diag comp [KB]"});
  for (Count i = 0; i < members; ++i) {
    const auto& r = results[static_cast<std::size_t>(i)];
    science.add_row(
        {std::to_string(i), fmt(feedbacks[static_cast<std::size_t>(i)], 2),
         fmt(warmings[static_cast<std::size_t>(i)], 2),
         fmt(r.states.back().ice_fraction, 3),
         std::to_string(r.raw_diag_bytes / 1024),
         std::to_string(r.compressed_diag_bytes / 1024)});
  }
  science.print(std::cout);
  std::cout << "\nWarming spread across parametrizations: "
            << fmt(*std::min_element(warmings.begin(), warmings.end()), 2)
            << " .. "
            << fmt(*std::max_element(warmings.begin(), warmings.end()), 2)
            << " C — the uncertainty the paper's campaign quantifies.\n\n";

  // --- Part 2: the scheduling. Benchmark, then plan the real campaign. ----
  std::cout << "Calibrating the pipeline on this machine (pcr at every group "
               "size, post chain; calibration-grade 96x192 grid)...\n";
  const climate::CalibrationResult calibration = climate::calibrate_pipeline(
      climate::calibration_grade_params(), 2);
  const platform::Cluster local =
      calibration.to_cluster("this-machine", resources);

  TableWriter table({"G", "measured pcr [ms]"});
  for (ProcCount g = 4; g <= 11; ++g)
    table.add_row({std::to_string(g), fmt(local.main_time(g) * 1e3, 2)});
  table.print(std::cout);
  std::cout << "post chain: " << fmt(local.post_time() * 1e3, 3) << " ms\n\n";

  const appmodel::Ensemble campaign{members, 1800};
  const sched::GroupSchedule schedule =
      sched::knapsack_grouping(local, campaign);
  const sim::SimResult planned =
      sim::simulate_ensemble(local, schedule, campaign);
  std::cout << "Knapsack plan for the full 150-year campaign on " << resources
            << " processors: " << schedule.describe() << "\n";
  std::cout << "Predicted campaign makespan: " << fmt_duration(planned.makespan)
            << " (" << fmt(planned.makespan, 1) << " s of this machine's "
            << "time at the toy resolution)\n";
  return 0;
}
