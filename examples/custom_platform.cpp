/// \file custom_platform.cpp
/// \brief Running the scheduler against *your own* benchmark tables — the
/// workflow the paper's authors used on Grid'5000: benchmark each cluster,
/// write the T[G] tables to a grid file, feed it to the scheduler.
///
///   $ ./custom_platform my_grid.txt [scenarios] [months]
///
/// Without an argument, a demonstration three-cluster file is used.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "platform/parser.hpp"
#include "sched/repartition.hpp"
#include "sim/grid_sim.hpp"

namespace {

// A hand-written platform: two mid-size clusters and one small fast one.
// Times follow the paper's published anchors (fastest T[11] = 1177 s).
constexpr const char* kDemoGrid = R"(
cluster fastlane          # small but quick
resources 24
min_group 4
main_times 4420 2567 1951 1642 1457 1334 1246 1177
post_time 168

cluster workhorse
resources 64
min_group 4
main_times 4722 2744 2085 1755 1557 1425 1331 1260
post_time 180

cluster oldiron           # the slow end of the paper's range
resources 48
min_group 4
main_times 6092 3540 2689 2264 2009 1839 1717 1622
post_time 232
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace oagrid;

  platform::Grid grid = [&] {
    if (argc > 1) {
      std::ifstream file(argv[1]);
      if (!file) {
        std::cerr << "cannot open " << argv[1] << "\n";
        std::exit(1);
      }
      return platform::parse_grid(file);
    }
    std::cout << "(no grid file given — using the built-in demo platform)\n\n";
    return platform::parse_grid_string(kDemoGrid);
  }();

  const Count scenarios = argc > 2 ? std::atoll(argv[2]) : 10;
  const Count months = argc > 3 ? std::atoll(argv[3]) : 150;
  const appmodel::Ensemble ensemble{scenarios, months};

  const sim::GridSimResult result =
      sim::simulate_grid(grid, ensemble, sched::Heuristic::kKnapsack,
                         /*threads=*/4);

  TableWriter table({"cluster", "procs", "T(11) [s]", "scenarios",
                     "makespan [s]", "human"});
  for (ClusterId c = 0; c < grid.cluster_count(); ++c) {
    const auto& cluster = grid.cluster(c);
    table.add_row(
        {cluster.name(), std::to_string(cluster.resources()),
         fmt(cluster.main_time(11), 0),
         std::to_string(
             result.repartition.dags_per_cluster[static_cast<std::size_t>(c)]),
         fmt(result.cluster_makespans[static_cast<std::size_t>(c)], 0),
         fmt_duration(result.cluster_makespans[static_cast<std::size_t>(c)])});
  }
  table.print(std::cout);
  std::cout << "\nGrid makespan: " << fmt_duration(result.makespan) << "\n";

  // Show that the greedy repartition is locally optimal (the paper's claim).
  std::cout << "Algorithm 1 local optimality: "
            << (sched::is_locally_optimal(result.performance,
                                          result.repartition)
                    ? "holds"
                    : "VIOLATED")
            << "\n";
  return 0;
}
