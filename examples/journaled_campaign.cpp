/// \file journaled_campaign.cpp
/// \brief Kill-and-resume walkthrough of the campaign service: the
/// Grid'5000 reality the paper describes — reservations expire mid-campaign
/// and "the experiment [is] restarted from the beginning of the month" —
/// promoted to a service guarantee. The service journals every decision to
/// a write-ahead log; this example crashes it on purpose, recovers in a
/// fresh instance, and shows the resumed run finishing with exactly the
/// outcome an uninterrupted run would have produced.
///
///   $ ./journaled_campaign [kill_after_records]      (default 15)

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <vector>

#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "service/service.hpp"

namespace {

using namespace oagrid;
using service::CampaignService;
using service::CampaignSpec;
using service::ServiceOptions;

platform::Grid demo_grid() { return platform::make_builtin_grid(20).prefix(2); }

ServiceOptions demo_options(const std::string& journal_dir,
                            long long kill_after = -1) {
  ServiceOptions options;
  options.policy = service::QueuePolicy::kWeightedFairShare;
  options.max_active = 2;
  options.journal_dir = journal_dir;
  options.snapshot_every = 10;
  options.kill_after_records = kill_after;
  return options;
}

void submit_workload(CampaignService& svc) {
  const auto spec = [](const std::string& owner, Count ns, Count nm) {
    CampaignSpec s;
    s.owner = owner;
    s.scenarios = ns;
    s.months = nm;
    return s;
  };
  // Submissions the service does not know about yet (ids are arrival
  // order, so after recovery the already-journaled prefix is skipped).
  const std::vector<std::pair<CampaignSpec, Seconds>> workload = {
      {spec("alice", 3, 4), 0.0},
      {spec("bob", 2, 5), 0.0},
      {spec("carol", 2, 3), 4000.0}};
  for (std::size_t i = svc.campaign_ids().size(); i < workload.size(); ++i)
    (void)svc.submit(workload[i].first, workload[i].second);
}

void print_outcome(const CampaignService& svc) {
  TableWriter table({"id", "owner", "status", "frontier", "makespan"});
  for (const service::CampaignId id : svc.campaign_ids()) {
    const service::CampaignState& state = svc.campaign(id);
    std::string frontier;
    for (const MonthIndex m : state.frontier)
      frontier += (frontier.empty() ? "" : "/") + std::to_string(m);
    table.add_row({std::to_string(id), state.spec.owner,
                   to_string(state.status), frontier,
                   state.status == service::CampaignStatus::kCompleted
                       ? fmt_duration(state.makespan())
                       : "-"});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const long long kill_after = argc > 1 ? std::atoll(argv[1]) : 15;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "oagrid_journaled_campaign")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // 1. The reference outcome: the same workload, never interrupted
  //    (journaled into its own directory).
  const std::string ref_dir = dir + "/uninterrupted";
  std::filesystem::create_directories(ref_dir);
  std::map<service::CampaignId, Seconds> reference;
  {
    CampaignService svc(demo_grid(), demo_options(ref_dir));
    submit_workload(svc);
    svc.run();
    std::cout << "== uninterrupted run ==\n";
    print_outcome(svc);
    for (const service::CampaignId id : svc.campaign_ids())
      reference[id] = svc.campaign(id).makespan();
  }

  // 2. The crash: same workload, but the service dies after `kill_after`
  //    journal appends (a stand-in for SIGKILL / an expired reservation).
  const std::string run_dir = dir + "/crashed";
  std::filesystem::create_directories(run_dir);
  {
    CampaignService svc(demo_grid(), demo_options(run_dir, kill_after));
    submit_workload(svc);
    const bool completed = svc.run();
    std::cout << "\n== crashed run (killed after " << kill_after
              << " journal records) ==\n";
    std::cout << (completed ? "finished before the kill point!\n"
                            : "killed mid-campaign, state lost\n");
  }

  // 3. Recovery: a fresh instance replays the journal (verifying every
  //    regenerated record against the stored bytes), re-derives the months
  //    that were in flight, and finishes the campaign.
  {
    CampaignService svc(demo_grid(), demo_options(run_dir));
    const service::RecoveryReport report = svc.recover();
    std::cout << "\n== recovery ==\n"
              << "replayed " << report.replayed_records << " records"
              << (report.snapshot_used
                      ? " on top of snapshot seq " +
                            std::to_string(report.snapshot_seq)
                      : "")
              << ", service clock back at " << fmt_duration(report.resume_time)
              << "\n";
    submit_workload(svc);  // hand the not-yet-journaled submissions back
    svc.run();
    std::cout << "\n== resumed run ==\n";
    print_outcome(svc);

    bool identical = true;
    for (const auto& [id, makespan] : reference)
      identical = identical && svc.campaign(id).makespan() == makespan;
    std::cout << "\nresumed makespans "
              << (identical ? "IDENTICAL to the uninterrupted run"
                            : "DIFFER from the uninterrupted run (bug!)")
              << "\n";
    std::filesystem::remove_all(dir);
    return identical ? 0 : 1;
  }
}
