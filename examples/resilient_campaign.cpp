/// \file resilient_campaign.cpp
/// \brief Operating the campaign on an unreliable grid: a server daemon dies
/// before submission, the client's step deadline drops it instead of
/// stranding the experiment, and the surviving clusters stream progress
/// while executing their (re-balanced) shares.
///
///   $ ./resilient_campaign [resources-per-cluster] [scenarios] [months]

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "middleware/client.hpp"
#include "middleware/master_agent.hpp"
#include "platform/profiles.hpp"

int main(int argc, char** argv) {
  using namespace oagrid;
  using namespace std::chrono_literals;

  const ProcCount resources = argc > 1 ? std::atoi(argv[1]) : 30;
  const Count scenarios = argc > 2 ? std::atoll(argv[2]) : 10;
  const Count months = argc > 3 ? std::atoll(argv[3]) : 120;

  const platform::Grid grid = platform::make_builtin_grid(resources);
  middleware::MasterAgent agent(grid);
  std::cout << "Deployed " << agent.daemon_count() << " server daemons.\n";

  // Disaster strikes: the 'chicon' daemon crashes before the campaign.
  agent.daemon(2).stop();
  std::cout << "SeD 2 (" << grid.cluster(2).name()
            << ") has crashed — submitting anyway with a 2 s step deadline.\n\n";

  middleware::Client client(agent);
  const auto result = client.submit_with_deadline(
      appmodel::Ensemble{scenarios, months}, sched::Heuristic::kKnapsack, 2000ms);

  std::cout << "Unresponsive daemons dropped: ";
  for (const ClusterId c : result.unresponsive)
    std::cout << grid.cluster(c).name() << " ";
  std::cout << "\n\n";

  TableWriter table({"cluster", "scenarios", "makespan", "human"});
  for (std::size_t i = 0; i < result.responsive.size(); ++i) {
    const ClusterId c = result.responsive[i];
    Seconds ms = 0;
    for (const auto& exec : result.campaign.executions)
      if (exec.cluster == c) ms = exec.makespan;
    table.add_row({grid.cluster(c).name(),
                   std::to_string(result.campaign.repartition.dags_per_cluster[i]),
                   fmt(ms, 0), fmt_duration(ms)});
  }
  table.print(std::cout);
  std::cout << "\nCampaign completed on the survivors: makespan "
            << fmt_duration(result.campaign.makespan) << "\n\n";

  // Progress streaming on a direct execution request (what a dashboard sees).
  std::cout << "Progress stream of a 3-scenario follow-up on "
            << grid.cluster(0).name() << ":\n";
  middleware::Mailbox<middleware::SedResponse> reply;
  middleware::ExecuteRequest request;
  request.request_id = 99;
  request.scenarios = 3;
  request.months = months;
  request.progress_every = 3 * months / 5;
  request.reply = &reply;
  agent.daemon(0).inbox().send(middleware::SedRequest{request});
  for (;;) {
    const auto response = reply.receive();
    if (!response) break;
    if (const auto* progress =
            std::get_if<middleware::ProgressUpdate>(&*response)) {
      std::cout << "  " << progress->months_done << "/"
                << progress->months_total << " months at simulated t+"
                << fmt_duration(progress->simulated_time) << "\n";
      continue;
    }
    const auto& exec = std::get<middleware::ExecuteResponse>(*response);
    std::cout << "  done: " << fmt_duration(exec.makespan) << "\n";
    break;
  }

  agent.shutdown();
  return 0;
}
