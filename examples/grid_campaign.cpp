/// \file grid_campaign.cpp
/// \brief The paper's §5 scenario end to end: a client submits a climate
/// campaign to a DIET-like middleware running one server daemon per
/// Grid'5000 cluster, the Figure 9 six-step protocol distributes the
/// scenarios (Algorithm 1), and each cluster executes its share.
///
///   $ ./grid_campaign [resources-per-cluster] [scenarios] [months]

#include <cstdlib>
#include <iostream>

#include "common/log.hpp"
#include "common/table.hpp"
#include "middleware/client.hpp"
#include "middleware/master_agent.hpp"
#include "platform/profiles.hpp"

int main(int argc, char** argv) {
  using namespace oagrid;

  const ProcCount resources = argc > 1 ? std::atoi(argv[1]) : 30;
  const Count scenarios = argc > 2 ? std::atoll(argv[2]) : 10;
  const Count months = argc > 3 ? std::atoll(argv[3]) : 150;

  set_log_level(LogLevel::kInfo);  // show the protocol steps on stderr

  // Deploy: one SeD per cluster (step 0 — the fleet).
  const platform::Grid grid = platform::make_builtin_grid(resources);
  middleware::MasterAgent agent(grid);
  std::cout << "Deployed " << agent.daemon_count()
            << " server daemons (one per cluster, " << resources
            << " processors each)\n\n";

  // Steps 1-6 of Figure 9.
  middleware::Client client(agent);
  const middleware::CampaignResult result =
      client.submit(appmodel::Ensemble{scenarios, months},
                    sched::Heuristic::kKnapsack);

  TableWriter table(
      {"cluster", "T(11) [s]", "scenarios", "makespan", "human"});
  for (ClusterId c = 0; c < grid.cluster_count(); ++c) {
    const Count share =
        result.repartition.dags_per_cluster[static_cast<std::size_t>(c)];
    Seconds ms = 0;
    for (const auto& exec : result.executions)
      if (exec.cluster == c) ms = exec.makespan;
    table.add_row({grid.cluster(c).name(),
                   fmt(grid.cluster(c).main_time(11), 0),
                   std::to_string(share), fmt(ms, 0), fmt_duration(ms)});
  }
  table.print(std::cout);
  std::cout << "\nCampaign makespan: " << fmt_duration(result.makespan)
            << "  (" << fmt(result.makespan, 0) << " s)\n";
  std::cout << "The fastest cluster received the most scenarios — the paper's"
               " §7 observation.\n";

  agent.shutdown();
  return 0;
}
