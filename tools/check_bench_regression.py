#!/usr/bin/env python3
"""Compare a --bench-json run against a checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold PCT]

Both files follow the schema written by bench/bench_util.hpp's
BenchJsonReporter:

    {"schema": 1,
     "benchmarks": [{"name": str, "iterations": int,
                     "real_ns_per_op": float, "cpu_ns_per_op": float,
                     "counters": {str: float, ...}}, ...]}

The comparison uses cpu_ns_per_op (wall time is too noisy on shared CI
runners). A benchmark REGRESSES when its current cpu time exceeds the
baseline by more than --threshold percent (default 10). Benchmarks present
only in the current run are reported as new and ignored; benchmarks present
only in the baseline fail the check (a silently dropped benchmark would
otherwise hide a regression forever).

Exit status: 0 = within threshold, 1 = regression or dropped benchmark,
2 = usage / malformed input.
"""

import argparse
import json
import sys


def load_records(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if doc.get("schema") != 1:
        sys.exit(f"error: {path}: unsupported schema {doc.get('schema')!r}")
    records = {}
    for rec in doc.get("benchmarks", []):
        name = rec.get("name")
        cpu = rec.get("cpu_ns_per_op")
        if not isinstance(name, str) or not isinstance(cpu, (int, float)):
            sys.exit(f"error: {path}: malformed record {rec!r}")
        # Duplicate names (repetitions): keep the fastest run, which is the
        # least noise-contaminated estimate of the benchmark's true cost.
        if name not in records or cpu < records[name]:
            records[name] = float(cpu)
    if not records:
        sys.exit(f"error: {path}: no benchmark records")
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("current", help="freshly generated JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="max allowed cpu-time increase in percent (default: 10)",
    )
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    current = load_records(args.current)

    failures = []
    width = max(len(name) for name in baseline)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(baseline):
        base_ns = baseline[name]
        if name not in current:
            failures.append(f"{name}: present in baseline but not in current run")
            print(f"{name:<{width}}  {base_ns:>10.1f}ns  {'MISSING':>12}  FAIL")
            continue
        cur_ns = current[name]
        delta = 100.0 * (cur_ns - base_ns) / base_ns if base_ns > 0 else 0.0
        verdict = "ok"
        if delta > args.threshold:
            verdict = "FAIL"
            failures.append(
                f"{name}: {base_ns:.1f}ns -> {cur_ns:.1f}ns "
                f"(+{delta:.1f}% > {args.threshold:.1f}%)"
            )
        print(
            f"{name:<{width}}  {base_ns:>10.1f}ns  {cur_ns:>10.1f}ns  "
            f"{delta:+6.1f}% {verdict}"
        )
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  {'(new)':>12}  {current[name]:>10.1f}ns  new")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond {args.threshold:.1f}%:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall {len(baseline)} benchmarks within {args.threshold:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
