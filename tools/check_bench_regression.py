#!/usr/bin/env python3
"""Compare --bench-json runs against checked-in baselines.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold PCT]
    check_bench_regression.py BASELINE_DIR/ CURRENT_DIR/ [--threshold PCT]

In file mode the two JSON files are compared directly. In directory mode
every *.json under BASELINE_DIR is matched by filename against CURRENT_DIR
and each pair is compared; a baseline file with no counterpart in
CURRENT_DIR fails the check (a silently dropped bench binary would
otherwise hide a regression forever). Extra files in CURRENT_DIR are
reported and ignored.

All files follow the schema written by bench/bench_util.hpp's
BenchJsonReporter:

    {"schema": 1,
     "benchmarks": [{"name": str, "iterations": int,
                     "real_ns_per_op": float, "cpu_ns_per_op": float,
                     "counters": {str: float, ...}}, ...]}

The comparison uses cpu_ns_per_op (wall time is too noisy on shared CI
runners). A benchmark REGRESSES when its current cpu time exceeds the
baseline by more than --threshold percent (default 10). Benchmarks present
only in the current run are reported as new and ignored; benchmarks present
only in the baseline fail the check.

Exit status: 0 = within threshold, 1 = regression or dropped benchmark or
missing current file, 2 = usage / malformed input.
"""

import argparse
import json
import os
import sys


def load_records(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if doc.get("schema") != 1:
        sys.exit(f"error: {path}: unsupported schema {doc.get('schema')!r}")
    records = {}
    for rec in doc.get("benchmarks", []):
        name = rec.get("name")
        cpu = rec.get("cpu_ns_per_op")
        if not isinstance(name, str) or not isinstance(cpu, (int, float)):
            sys.exit(f"error: {path}: malformed record {rec!r}")
        # Duplicate names (repetitions): keep the fastest run, which is the
        # least noise-contaminated estimate of the benchmark's true cost.
        if name not in records or cpu < records[name]:
            records[name] = float(cpu)
    if not records:
        sys.exit(f"error: {path}: no benchmark records")
    return records


def compare_files(baseline_path, current_path, threshold):
    """Prints the comparison table; returns the list of failure messages."""
    baseline = load_records(baseline_path)
    current = load_records(current_path)

    failures = []
    width = max(len(name) for name in baseline)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(baseline):
        base_ns = baseline[name]
        if name not in current:
            failures.append(f"{name}: present in baseline but not in current run")
            print(f"{name:<{width}}  {base_ns:>10.1f}ns  {'MISSING':>12}  FAIL")
            continue
        cur_ns = current[name]
        delta = 100.0 * (cur_ns - base_ns) / base_ns if base_ns > 0 else 0.0
        verdict = "ok"
        if delta > threshold:
            verdict = "FAIL"
            failures.append(
                f"{name}: {base_ns:.1f}ns -> {cur_ns:.1f}ns "
                f"(+{delta:.1f}% > {threshold:.1f}%)"
            )
        print(
            f"{name:<{width}}  {base_ns:>10.1f}ns  {cur_ns:>10.1f}ns  "
            f"{delta:+6.1f}% {verdict}"
        )
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  {'(new)':>12}  {current[name]:>10.1f}ns  new")
    return failures, len(baseline)


def compare_directories(baseline_dir, current_dir, threshold):
    names = sorted(
        entry
        for entry in os.listdir(baseline_dir)
        if entry.endswith(".json")
    )
    if not names:
        sys.exit(f"error: {baseline_dir}: no *.json baselines")
    failures = []
    compared = 0
    for name in names:
        current_path = os.path.join(current_dir, name)
        print(f"== {name} ==")
        if not os.path.isfile(current_path):
            failures.append(f"{name}: baseline has no current run in {current_dir}")
            print(f"MISSING: {current_path}\n")
            continue
        file_failures, count = compare_files(
            os.path.join(baseline_dir, name), current_path, threshold
        )
        failures.extend(f"{name}: {message}" for message in file_failures)
        compared += count
        print()
    try:
        extra = sorted(
            entry
            for entry in os.listdir(current_dir)
            if entry.endswith(".json") and entry not in names
        )
    except OSError:
        extra = []
    for name in extra:
        print(f"== {name} == (no baseline, ignored)")
    return failures, compared


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in baseline JSON file or directory")
    parser.add_argument("current", help="freshly generated JSON file or directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="max allowed cpu-time increase in percent (default: 10)",
    )
    args = parser.parse_args()

    if os.path.isdir(args.baseline):
        if not os.path.isdir(args.current):
            sys.exit(
                f"error: baseline {args.baseline} is a directory but "
                f"current {args.current} is not"
            )
        failures, compared = compare_directories(
            args.baseline, args.current, args.threshold
        )
    else:
        failures, compared = compare_files(
            args.baseline, args.current, args.threshold
        )

    if failures:
        print(f"\n{len(failures)} regression(s) beyond {args.threshold:.1f}%:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall {compared} benchmarks within {args.threshold:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
