/// \file oagrid_proptest.cpp
/// \brief Property-based testing driver: randomized campaigns of generated
/// worlds checked against the cross-subsystem invariant registry.
///
///   oagrid_proptest                         # default budget, default seed
///   oagrid_proptest --seed=7 --iters=100    # a wider campaign
///   oagrid_proptest --seed=7 --case=13      # replay one failing case
///   oagrid_proptest --spec=seed=9,months=2  # replay a shrunk minimal case
///   oagrid_proptest --invariant=crash-recovery --list
///
/// Exit status: 0 all checks passed, 1 at least one property violated,
/// 2 usage error. Every failure prints a one-line repro command.

#include <exception>
#include <iostream>
#include <string>

#include "common/argparse.hpp"
#include "testkit/runner.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace oagrid;
  ArgParser parser("oagrid_proptest",
                   "randomized property-testing campaign over generated "
                   "platforms, campaigns, networks, failures and services");
  parser.add_option("seed", "root seed for the campaign stream", "");
  parser.add_option("iters", "number of generated cases", "");
  parser.add_option("case", "run only this campaign index", "-1");
  parser.add_option("invariant", "check only this invariant", "");
  parser.add_option("spec", "run exactly this encoded case spec", "");
  parser.add_option("max-shrink", "shrink step budget per failure", "64");
  parser.add_flag("list", "list registered invariants and exit");
  parser.add_flag("verbose", "print every generated case spec");
  parser.add_flag("help", "show usage");
  parser.parse(argc, argv);

  if (parser.flag("help")) {
    std::cout << parser.usage();
    return 0;
  }
  if (parser.flag("list")) {
    for (const testkit::Invariant& invariant : testkit::all_invariants())
      std::cout << invariant.name << "\n    " << invariant.summary << "\n";
    return 0;
  }

  testkit::RunOptions options;
  if (!parser.get("seed").empty()) {
    options.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
    options.seed_explicit = true;
  }
  if (!parser.get("iters").empty()) {
    options.iterations = static_cast<int>(parser.get_int("iters"));
    options.iterations_explicit = true;
  }
  options.only_case = parser.get_int("case");
  options.only_invariant = parser.get("invariant");
  options.explicit_spec = parser.get("spec");
  options.max_shrink_steps = static_cast<int>(parser.get_int("max-shrink"));
  options.verbose = parser.flag("verbose");
  options = testkit::apply_env(options);
  if (options.iterations < 1) {
    std::cerr << "error: --iters must be at least 1\n";
    return 2;
  }
  if (!options.explicit_spec.empty() && options.only_case >= 0) {
    std::cerr << "error: --spec and --case are mutually exclusive (a spec "
                 "already pins the case)\n";
    return 2;
  }

  const testkit::RunReport report =
      testkit::run_properties(options, std::cout);
  if (!options.only_invariant.empty() &&
      testkit::find_invariant(options.only_invariant) == nullptr)
    return 2;
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "oagrid_proptest: " << error.what() << "\n";
    return 2;
  }
}
