/// \file oagrid_cli.cpp
/// \brief Command-line front end to the library.
///
///   oagrid_cli schedule  --resources 53 --scenarios 10 --months 150
///   oagrid_cli simulate  --heuristic knapsack --gantt --jitter 0.05
///   oagrid_cli grid      --clusters 5 --resources 30 [--hierarchy]
///   oagrid_cli sweep     --from 20 --to 120 --step 4 --csv
///   oagrid_cli calibrate --reps 2
///   oagrid_cli serve     --campaigns alice:3x12,bob:2x12:w2 --journal DIR
///
/// `schedule` prints every heuristic's grouping and closed-form/simulated
/// makespans for one cluster; `simulate` runs one campaign in the DES;
/// `grid` runs the full §5 client/agent/SeD protocol; `sweep` regenerates a
/// Figure-8-style gain table; `calibrate` benchmarks the real climate
/// pipeline on this machine and emits a grid-file snippet; `serve` runs the
/// multi-tenant campaign service with a crash-recoverable journal
/// (--kill-after injects a crash, --resume recovers from it).

#include <array>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "appmodel/month.hpp"
#include "climate/calibration.hpp"
#include "common/argparse.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "fault/checkpoint.hpp"
#include "fault/parser.hpp"
#include "middleware/client.hpp"
#include "middleware/local_agent.hpp"
#include "middleware/master_agent.hpp"
#include "net/parser.hpp"
#include "obs/obs.hpp"
#include "platform/parser.hpp"
#include "platform/profiles.hpp"
#include "sched/lower_bounds.hpp"
#include "sched/makespan_model.hpp"
#include "sched/throughput.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/eval_cache.hpp"
#include "sim/exporters.hpp"
#include "sim/fluid_grid.hpp"
#include "service/service.hpp"
#include "sim/grid_sim.hpp"
#include "sim/local_search.hpp"
#include "sim/trace_stats.hpp"

namespace {

using namespace oagrid;

/// Declares the global observability flag pair shared by the schedule /
/// simulate / grid / sweep subcommands.
void add_obs_options(ArgParser& args) {
  args.add_optional_value(
          "metrics",
          "print a metrics summary table; with =FILE also write "
          "Prometheus-style text exposition to FILE",
          "")
      .add_option("trace-out",
                  "write a Chrome trace-event JSON file "
                  "(chrome://tracing / Perfetto)",
                  "");
}

/// Lifetime of one observed CLI command: flips obs::enabled() on after
/// parsing and exports/prints everything the run recorded.
class ObsSession {
 public:
  explicit ObsSession(const ArgParser& args)
      : metrics_(args.flag("metrics")),
        metrics_file_(args.get("metrics")),
        trace_file_(args.get("trace-out")) {
    if (metrics_ || !trace_file_.empty()) {
      obs::set_enabled(true);
      obs::reset();
    }
  }

  /// Call after all instrumented work (and worker teardown) finished.
  void finish() const {
    if (!obs::enabled()) return;
    if (metrics_) {
      std::cout << "\n== metrics ==\n";
      obs::write_metrics_table(std::cout, obs::metrics());
      if (!metrics_file_.empty()) {
        std::ofstream out(metrics_file_);
        if (!out)
          throw std::invalid_argument("cannot write " + metrics_file_);
        obs::write_prometheus(out, obs::metrics());
        std::cout << "metrics exposition written to " << metrics_file_
                  << "\n";
      }
    }
    if (!trace_file_.empty()) {
      std::ofstream out(trace_file_);
      if (!out) throw std::invalid_argument("cannot write " + trace_file_);
      obs::write_chrome_trace(out, obs::trace_buffer());
      std::cout << "Chrome trace (" << obs::trace_buffer().size()
                << " events) written to " << trace_file_ << "\n";
      if (obs::trace_buffer().dropped() > 0)
        std::cout << "warning: " << obs::trace_buffer().dropped()
                  << " events dropped (buffer capacity)\n";
    }
  }

 private:
  bool metrics_;
  std::string metrics_file_;
  std::string trace_file_;
};

/// Declares the network-model flag trio shared by the simulate / grid /
/// sweep subcommands.
void add_net_options(ArgParser& args) {
  args.add_optional_value(
          "network",
          "price data movement over a network model: =FILE parses a "
          "description (see docs/network.md), bare flag uses the built-in "
          "RENATER profile",
          "")
      .add_option("home", "cluster that stages inputs and archives results",
                  "0")
      .add_option("transfer-deadline",
                  "per-transfer budget [simulated s, 0 = none]; misses are "
                  "reported",
                  "0");
}

/// The network model selected by --network, sized to `clusters`, or nullopt
/// when the flag is absent.
std::optional<net::NetworkModel> network_from(const ArgParser& args,
                                              int clusters) {
  if (!args.flag("network")) return std::nullopt;
  const std::string file = args.get("network");
  if (file.empty()) return net::renater_network(clusters);
  std::ifstream in(file);
  if (!in) throw std::invalid_argument("cannot open " + file);
  net::NetworkModel model = net::parse_network(in, file);
  if (model.cluster_count() != clusters)
    throw std::invalid_argument(
        "network file covers " + std::to_string(model.cluster_count()) +
        " cluster(s), the platform has " + std::to_string(clusters));
  return model;
}

/// Declares the failure-injection flag set shared by the simulate / grid /
/// sweep / dynamic / serve subcommands.
void add_fault_options(ArgParser& args) {
  args.add_optional_value(
          "failures",
          "inject cluster failures: =FILE parses a failure trace "
          "(see docs/fault.md), bare flag draws exponential outages from "
          "--mtbf/--mttr on every cluster",
          "")
      .add_option("mtbf", "mean time between failures [s] (bare --failures)",
                  "86400")
      .add_option("mttr", "mean time to repair [s] (bare --failures)", "3600")
      .add_option("recovery", "recovery policy: wait | reschedule | migrate",
                  "reschedule")
      .add_option("checkpoint-months",
                  "restart-file retention cadence in months (0 = Young/Daly "
                  "automatic)",
                  "1")
      .add_option("fault-seed", "failure-model seed (bare --failures)", "1");
}

/// The failure model selected by --failures, sized to `clusters`, or nullopt
/// when the flag is absent.
std::optional<fault::FailureModel> fault_model_from(const ArgParser& args,
                                                    int clusters) {
  if (!args.flag("failures")) return std::nullopt;
  const std::string file = args.get("failures");
  if (file.empty())
    return fault::FailureModel::uniform_exponential(
        clusters, args.get_double("mtbf"), args.get_double("mttr"),
        static_cast<std::uint64_t>(args.get_int("fault-seed")));
  std::ifstream in(file);
  if (!in) throw std::invalid_argument("cannot open " + file);
  fault::FailureModel model = fault::parse_failures(in, file);
  if (model.cluster_count() != clusters)
    throw std::invalid_argument(
        "failure file covers " + std::to_string(model.cluster_count()) +
        " cluster(s), the platform has " + std::to_string(clusters));
  return model;
}

/// Resolves --checkpoint-months. 0 asks for the Young/Daly optimum against
/// the most failure-prone stochastic cluster, with `checkpoint_cost` the
/// price of keeping one restart (the hand-off transfer when a network is
/// attached) — free checkpoints round down to the monthly cadence, which is
/// exactly the application's natural behaviour.
MonthIndex checkpoint_cadence_from(const ArgParser& args,
                                   const fault::FailureModel& model,
                                   Seconds month_seconds,
                                   MonthIndex max_months,
                                   Seconds checkpoint_cost) {
  if (const long long k = args.get_int("checkpoint-months"); k > 0)
    return static_cast<MonthIndex>(k);
  Seconds mtbf = 0.0;
  for (ClusterId c = 0; c < model.cluster_count(); ++c) {
    const fault::FailureProcess& process = model.process(c);
    const bool stochastic =
        process.kind == fault::ProcessKind::kExponential ||
        process.kind == fault::ProcessKind::kWeibull;
    if (stochastic && (mtbf == 0.0 || process.mtbf < mtbf))
      mtbf = process.mtbf;
  }
  if (mtbf <= 0.0) return 1;  // trace-only or dead: keep every restart
  return fault::optimal_checkpoint_months(month_seconds, checkpoint_cost,
                                          mtbf, max_months);
}

void print_fault_stats(const fault::FaultStats& stats) {
  std::cout << "failures:  " << stats.outages << " outages, " << stats.kills
            << " in-flight kills, " << stats.rewound_months
            << " months rewound, " << fmt(stats.lost_seconds, 0)
            << " s of work lost, " << fmt(stats.downtime_seconds, 0)
            << " s of downtime\n";
}

sched::Heuristic heuristic_from(const std::string& name) {
  if (name == "basic") return sched::Heuristic::kBasic;
  if (name == "redistribute") return sched::Heuristic::kRedistribute;
  if (name == "all-for-main") return sched::Heuristic::kAllForMain;
  if (name == "knapsack") return sched::Heuristic::kKnapsack;
  throw std::invalid_argument(
      "unknown heuristic '" + name +
      "' (basic | redistribute | all-for-main | knapsack)");
}

platform::Cluster cluster_from(const ArgParser& args) {
  const std::string file = args.get("grid-file");
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) throw std::invalid_argument("cannot open " + file);
    const platform::Grid grid = platform::parse_grid(in);
    const auto index = static_cast<ClusterId>(args.get_int("profile"));
    return grid.cluster(index);
  }
  return platform::make_builtin_cluster(
             static_cast<int>(args.get_int("profile")),
             static_cast<ProcCount>(args.get_int("resources")));
}

void add_common_workload(ArgParser& args) {
  args.add_option("resources", "processors on the cluster", "53")
      .add_option("scenarios", "independent scenarios (NS)", "10")
      .add_option("months", "months per scenario (NM)", "150")
      .add_option("profile", "built-in cluster profile 0-4 or index in --grid-file", "1")
      .add_option("grid-file", "platform description file (overrides --profile table)", "");
}

/// Submits one campaign through a deployed agent hierarchy and prints the
/// per-cluster outcome (shared by `grid` and `simulate --clusters N`).
/// --network routes through Client::submit_staged (data movement priced and
/// shown); otherwise --step-timeout > 0 routes through the fault-tolerant
/// submit_with_deadline.
void run_grid_campaign(middleware::Deployment& deployment,
                       const platform::Grid& grid,
                       const appmodel::Ensemble& ensemble,
                       sched::Heuristic heuristic, const ArgParser& args) {
  middleware::Client client(deployment);

  if (const auto network = network_from(args, grid.cluster_count())) {
    middleware::Client::StagingOptions staging;
    staging.data = sim::campaign_network_options(
        *network, ensemble, {},
        static_cast<ClusterId>(args.get_int("home")));
    if (const double budget = args.get_double("transfer-deadline");
        budget > 0.0)
      staging.transfer_deadline = budget;
    const auto result = client.submit_staged(ensemble, heuristic, staging);

    TableWriter table({"cluster", "procs", "scenarios", "stage [s]",
                       "compute [s]", "collect [s]", "total"});
    for (ClusterId c = 0; c < grid.cluster_count(); ++c) {
      const auto ci = static_cast<std::size_t>(c);
      Seconds ms = 0;
      for (const auto& exec : result.campaign.executions)
        if (exec.cluster == c) ms = exec.makespan;
      table.add_row(
          {grid.cluster(c).name(), std::to_string(grid.cluster(c).resources()),
           std::to_string(result.campaign.repartition.dags_per_cluster[ci]),
           fmt(result.staging_seconds[ci], 1), fmt(ms, 0),
           fmt(result.collection_seconds[ci], 1),
           fmt_duration(result.staging_seconds[ci] + ms +
                        result.collection_seconds[ci])});
    }
    table.print(std::cout);
    std::cout << "\ndata moved: " << fmt(result.transfer_mb, 0) << " MB";
    if (result.deadline_misses > 0)
      std::cout << " (" << result.deadline_misses
                << " transfer(s) missed the deadline)";
    std::cout << "\ncampaign makespan: " << fmt_duration(result.makespan)
              << "\n";
    return;
  }

  if (const long long timeout_ms = args.get_int("step-timeout");
      timeout_ms > 0) {
    const auto result = client.submit_with_deadline(
        ensemble, heuristic, std::chrono::milliseconds(timeout_ms));
    std::cout << result.responsive.size() << " cluster(s) answered, "
              << result.unresponsive.size() << " dropped after the "
              << timeout_ms << " ms step deadline\n";
    std::cout << "campaign makespan: "
              << fmt_duration(result.campaign.makespan) << "\n";
    return;
  }

  const middleware::CampaignResult result = client.submit(ensemble, heuristic);

  TableWriter table(
      {"cluster", "procs", "scenarios", "makespan", "human", "util %"});
  for (ClusterId c = 0; c < grid.cluster_count(); ++c) {
    Seconds ms = 0;
    double util = 0;
    for (const auto& exec : result.executions)
      if (exec.cluster == c) {
        ms = exec.makespan;
        util = exec.group_utilization;
      }
    table.add_row(
        {grid.cluster(c).name(), std::to_string(grid.cluster(c).resources()),
         std::to_string(
             result.repartition.dags_per_cluster[static_cast<std::size_t>(c)]),
         fmt(ms, 0), fmt_duration(ms), fmt(100.0 * util, 1)});
  }
  table.print(std::cout);
  std::cout << "\ncampaign makespan: " << fmt_duration(result.makespan) << "\n";
}

int cmd_schedule(const std::vector<std::string>& argv) {
  ArgParser args("oagrid_cli schedule",
                 "Compare the paper's four heuristics on one cluster");
  add_common_workload(args);
  add_obs_options(args);
  args.parse(argv);
  const ObsSession obs_session(args);

  const platform::Cluster cluster = cluster_from(args);
  const appmodel::Ensemble ensemble{args.get_int("scenarios"),
                                    args.get_int("months")};

  std::cout << "Cluster '" << cluster.name() << "', " << cluster.resources()
            << " processors; NS=" << ensemble.scenarios
            << " NM=" << ensemble.months << "\n\n";
  const Seconds bound =
      sched::ensemble_lower_bounds(cluster, ensemble).combined();
  TableWriter table({"heuristic", "grouping", "makespan [s]", "human",
                     "gap to LB"});
  for (const auto h :
       {sched::Heuristic::kBasic, sched::Heuristic::kRedistribute,
        sched::Heuristic::kAllForMain, sched::Heuristic::kKnapsack}) {
    const auto schedule = sched::make_schedule(h, cluster, ensemble);
    const auto result = sim::simulate_ensemble(cluster, schedule, ensemble);
    table.add_row({to_string(h), schedule.describe(), fmt(result.makespan, 0),
                   fmt_duration(result.makespan),
                   fmt(100.0 * (result.makespan - bound) / bound, 2) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nlower bound: " << fmt(bound, 0) << " s ("
            << fmt_duration(bound) << ")\n";
  obs_session.finish();
  return 0;
}

int cmd_simulate(const std::vector<std::string>& argv) {
  ArgParser args("oagrid_cli simulate",
                 "Discrete-event simulation of one campaign");
  add_common_workload(args);
  args.add_option("heuristic", "basic | redistribute | all-for-main | knapsack",
                  "knapsack")
      .add_option("jitter", "duration noise (stddev of ln factor)", "0")
      .add_option("task-failures", "per-task failure probability", "0")
      .add_option("seed", "perturbation seed", "1")
      .add_option("trace-csv", "write the execution trace to this file", "")
      .add_option("svg", "write an SVG Gantt chart to this file", "")
      .add_option("clusters",
                  "with N>1, run the campaign over N built-in clusters "
                  "through the middleware (client/agent/SeD)",
                  "1")
      .add_option("threads",
                  "worker cap for --optimize's parallel local search "
                  "(0 = all)",
                  "0")
      .add_option("step-timeout",
                  "with --clusters N>1: per-protocol-step daemon deadline "
                  "[wall ms, 0 = wait forever]",
                  "0")
      .add_flag("gantt", "print an ASCII Gantt chart")
      .add_flag("optimize", "refine the grouping with local search first");
  add_fault_options(args);
  add_net_options(args);
  add_obs_options(args);
  args.parse(argv);
  const ObsSession obs_session(args);

  const appmodel::Ensemble ensemble{args.get_int("scenarios"),
                                    args.get_int("months")};
  if (const long long clusters = args.get_int("clusters"); clusters > 1) {
    if (args.flag("failures"))
      throw std::invalid_argument(
          "--failures with --clusters N>1 is not supported here; use "
          "`oagrid_cli grid --failures` for whole-grid failure injection");
    const platform::Grid grid =
        platform::make_builtin_grid(
            static_cast<ProcCount>(args.get_int("resources")))
            .prefix(static_cast<int>(clusters));
    {
      // Scoped so the SeD threads have joined (flushing per-SeD utilization
      // gauges and trace events) before the exporters run.
      middleware::MasterAgent agent(grid);
      run_grid_campaign(agent, grid, ensemble,
                        heuristic_from(args.get("heuristic")), args);
    }
    obs_session.finish();
    return 0;
  }

  const platform::Cluster cluster = cluster_from(args);
  sched::GroupSchedule schedule = sched::make_schedule(
      heuristic_from(args.get("heuristic")), cluster, ensemble);
  if (args.flag("optimize")) {
    sim::LocalSearchOptions search;
    search.threads = static_cast<std::size_t>(args.get_int("threads"));
    const auto refined = sim::local_search_grouping(cluster, ensemble, search);
    std::cout << "local search: " << refined.evaluations << " simulations, "
              << refined.accepted_moves << " accepted moves\n";
    schedule = refined.best;
  }

  sim::SimOptions options;
  options.capture_trace = args.flag("gantt") ||
                          !args.get("trace-csv").empty() ||
                          !args.get("svg").empty();
  options.perturbation.duration_jitter = args.get_double("jitter");
  options.perturbation.failure_probability = args.get_double("task-failures");
  options.perturbation.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  if (const auto network = network_from(args, 1)) {
    // Single cluster: the network prices the inter-month restart hand-off
    // over the cluster's own fabric (shared storage between group runs).
    options.restart_handoff =
        network->transfer_time(0, 0, appmodel::VolumeParams{}.restart_mb);
    std::cout << "restart hand-off: " << fmt(options.restart_handoff, 4)
              << " s per month boundary\n";
  }
  if (obs::enabled()) {
    options.obs_trace = &obs::trace_buffer();
    options.obs_label = cluster.name();
  }
  const auto failure_model = fault_model_from(args, 1);
  if (failure_model) {
    options.fault.model = &*failure_model;
    options.fault.cluster = 0;
    options.fault.recovery = fault::recovery_policy_from(args.get("recovery"));
    // One scenario advances at 1/NS of the cluster's best throughput; that
    // wall time per month is what Young/Daly weighs the checkpoint against.
    const Seconds month_seconds =
        static_cast<double>(ensemble.scenarios) /
        sched::best_throughput(cluster, ensemble.scenarios);
    options.fault.checkpoint_months = checkpoint_cadence_from(
        args, *failure_model, month_seconds, static_cast<MonthIndex>(ensemble.months),
        options.restart_handoff);
    options.fault.migrate_staging = options.restart_handoff;
    std::cout << "failure injection: recovery=" << args.get("recovery")
              << ", checkpoint every " << options.fault.checkpoint_months
              << " month(s)\n";
  }

  const sim::SimResult result =
      sim::simulate_ensemble(cluster, schedule, ensemble, options);
  std::cout << "grouping:  " << schedule.describe() << "\n";
  if (options.fault.active() && result.makespan >= fault::kUnavailableTime)
    std::cout << "makespan:  unavailable (the campaign cannot complete "
                 "under this failure model)\n";
  else
    std::cout << "makespan:  " << fmt(result.makespan, 1) << " s ("
              << fmt_duration(result.makespan) << ")\n";
  std::cout << "tasks:     " << result.mains_executed << " mains, "
            << result.posts_executed << " posts, " << result.retries
            << " retries\n";
  std::cout << "group utilization: " << fmt(100.0 * result.group_utilization, 1)
            << "%\n";
  if (options.fault.active()) print_fault_stats(result.fault);
  if (options.capture_trace && result.retries == 0) {
    const sim::TraceStats stats = sim::analyze_trace(result.trace);
    std::cout << "post latency:      mean " << fmt(stats.mean_post_latency, 1)
              << " s, max " << fmt(stats.max_post_latency, 1)
              << " s (diagnostics waiting for a post slot)\n";
  }
  if (args.flag("gantt")) std::cout << "\n" << result.trace.render_gantt(100);
  if (const std::string path = args.get("trace-csv"); !path.empty()) {
    std::ofstream out(path);
    if (!out) throw std::invalid_argument("cannot write " + path);
    result.trace.write_csv(out);
    std::cout << "trace written to " << path << "\n";
  }
  if (const std::string path = args.get("svg"); !path.empty()) {
    std::ofstream out(path);
    if (!out) throw std::invalid_argument("cannot write " + path);
    sim::SvgOptions svg;
    svg.title = "Ocean-Atmosphere campaign — " + schedule.describe();
    sim::write_svg_gantt(out, result.trace, svg);
    std::cout << "SVG Gantt written to " << path << "\n";
  }
  obs_session.finish();
  return 0;
}

int cmd_dynamic(const std::vector<std::string>& argv) {
  ArgParser args("oagrid_cli dynamic",
                 "Fluid grid with speed drift: static vs migrating placement");
  args.add_option("clusters", "number of built-in clusters (2-5)", "5")
      .add_option("resources", "processors per cluster", "25")
      .add_option("scenarios", "independent scenarios (NS)", "10")
      .add_option("months", "months per scenario (NM)", "120")
      .add_option("sigma", "per-epoch log speed drift", "0.2")
      .add_option("epoch", "re-evaluation period [s]", "14400")
      .add_option("cost",
                  "migration cost [s]; < 0 derives it from the network "
                  "model (or the 300 s legacy flat cost without one)",
                  "-1")
      .add_option("state-mb", "state shipped per migration [MB]", "120")
      .add_option("seeds", "number of drift seeds", "10")
      .add_optional_value(
          "network",
          "price migrations over a network model: =FILE parses a "
          "description, bare flag uses the built-in RENATER profile",
          "");
  add_fault_options(args);
  args.parse(argv);

  const auto grid =
      platform::make_builtin_grid(static_cast<ProcCount>(args.get_int("resources")))
          .prefix(static_cast<int>(args.get_int("clusters")));
  const appmodel::Ensemble ensemble{args.get_int("scenarios"),
                                    args.get_int("months")};
  const auto network = network_from(args, grid.cluster_count());
  const auto failure_model = fault_model_from(args, grid.cluster_count());
  TableWriter table({"policy", "mean makespan", "human", "mean migrations",
                     "mean migr [s]"});
  for (const auto policy :
       {sim::GridPolicy::kStatic, sim::GridPolicy::kRebalanceUnstarted,
        sim::GridPolicy::kMigrateWithState}) {
    double total = 0, moves = 0, stalls = 0;
    const auto seeds = args.get_int("seeds");
    for (long long seed = 1; seed <= seeds; ++seed) {
      sim::DriftModel drift;
      drift.sigma = args.get_double("sigma");
      drift.epoch_length = args.get_double("epoch");
      drift.migration_cost_override = args.get_double("cost");
      drift.migration_state_mb = args.get_double("state-mb");
      if (network) drift.network = *network;
      if (failure_model) drift.failures = *failure_model;
      drift.seed = static_cast<std::uint64_t>(seed);
      const auto result = simulate_dynamic_grid(grid, ensemble, policy, drift);
      total += result.makespan;
      moves += result.migrations;
      stalls += result.migration_seconds;
    }
    table.add_row({to_string(policy), fmt(total / static_cast<double>(seeds), 0),
                   fmt_duration(total / static_cast<double>(seeds)),
                   fmt(moves / static_cast<double>(seeds), 1),
                   fmt(stalls / static_cast<double>(seeds), 0)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_export(const std::vector<std::string>& argv) {
  ArgParser args("oagrid_cli export",
                 "Write workflow DAGs as Graphviz DOT");
  args.add_positional("what", "month | fused | scenario")
      .add_option("months", "chain length for 'scenario'", "3")
      .add_option("out", "output file (default: stdout)", "");
  args.parse(argv);

  std::ostringstream dot;
  const std::string what = args.get("what");
  if (what == "month") {
    sim::write_dot(dot, appmodel::make_month_dag().graph, "monthly_simulation");
  } else if (what == "fused") {
    sim::write_dot(dot, appmodel::make_fused_month().graph, "fused_month");
  } else if (what == "scenario") {
    sim::write_dot(dot,
                   appmodel::make_fused_scenario(
                       static_cast<int>(args.get_int("months")))
                       .graph,
                   "scenario_chain");
  } else {
    throw std::invalid_argument("unknown DAG '" + what +
                                "' (month | fused | scenario)");
  }
  if (const std::string path = args.get("out"); !path.empty()) {
    std::ofstream out(path);
    if (!out) throw std::invalid_argument("cannot write " + path);
    out << dot.str();
    std::cout << "DOT written to " << path << "\n";
  } else {
    std::cout << dot.str();
  }
  return 0;
}

int cmd_grid(const std::vector<std::string>& argv) {
  ArgParser args("oagrid_cli grid",
                 "Full §5 campaign over a heterogeneous grid (Figure 9 flow)");
  args.add_option("clusters", "number of built-in clusters (2-5)", "5")
      .add_option("resources", "processors per cluster", "30")
      .add_option("scenarios", "independent scenarios (NS)", "10")
      .add_option("months", "months per scenario (NM)", "150")
      .add_option("heuristic", "grouping heuristic", "knapsack")
      .add_option("grid-file", "platform description file", "")
      .add_option("branching", "agent-tree branching factor (with --hierarchy)", "2")
      .add_option("step-timeout",
                  "per-protocol-step daemon deadline [wall ms, 0 = wait "
                  "forever]",
                  "0")
      .add_flag("hierarchy", "deploy a DIET-style Local Agent tree");
  add_fault_options(args);
  add_net_options(args);
  add_obs_options(args);
  args.parse(argv);
  const ObsSession obs_session(args);

  platform::Grid grid = [&] {
    const std::string file = args.get("grid-file");
    if (!file.empty()) {
      std::ifstream in(file);
      if (!in) throw std::invalid_argument("cannot open " + file);
      return platform::parse_grid(in);
    }
    return platform::make_builtin_grid(
               static_cast<ProcCount>(args.get_int("resources")))
        .prefix(static_cast<int>(args.get_int("clusters")));
  }();
  const appmodel::Ensemble ensemble{args.get_int("scenarios"),
                                    args.get_int("months")};
  const auto heuristic = heuristic_from(args.get("heuristic"));

  if (const auto failure_model = fault_model_from(args, grid.cluster_count())) {
    // The middleware protocol is failure-oblivious; injection runs the same
    // §5 flow in-process where the per-cluster DES can kill and rewind work.
    const ClusterId home = static_cast<ClusterId>(args.get_int("home"));
    sim::GridFaultOptions fault_options;
    fault_options.model = *failure_model;
    fault_options.recovery = fault::recovery_policy_from(args.get("recovery"));
    const Seconds month_seconds =
        static_cast<double>(ensemble.scenarios) /
        sched::best_throughput(grid.cluster(home), ensemble.scenarios);
    fault_options.checkpoint_months = checkpoint_cadence_from(
        args, *failure_model, month_seconds, static_cast<MonthIndex>(ensemble.months), 0.0);
    sim::GridNetworkOptions net_options;
    if (const auto network = network_from(args, grid.cluster_count()))
      net_options = sim::campaign_network_options(*network, ensemble, {}, home);
    std::cout << "failure injection: recovery=" << args.get("recovery")
              << ", checkpoint every " << fault_options.checkpoint_months
              << " month(s)\n\n";
    const sim::GridSimResult result = sim::simulate_grid(
        grid, ensemble, heuristic, 1, net_options, fault_options);

    TableWriter table({"cluster", "procs", "scenarios", "makespan", "human"});
    for (ClusterId c = 0; c < grid.cluster_count(); ++c) {
      const auto ci = static_cast<std::size_t>(c);
      const Seconds ms = result.cluster_makespans[ci];
      const bool unavailable = ms >= fault::kUnavailableTime;
      table.add_row({grid.cluster(c).name(),
                     std::to_string(grid.cluster(c).resources()),
                     std::to_string(result.repartition.dags_per_cluster[ci]),
                     unavailable ? "unavailable" : fmt(ms, 0),
                     unavailable ? "-" : fmt_duration(ms)});
    }
    table.print(std::cout);
    if (result.transfer_mb > 0.0)
      std::cout << "\ndata moved: " << fmt(result.transfer_mb, 0) << " MB";
    if (result.makespan >= fault::kUnavailableTime)
      std::cout << "\ncampaign makespan: unavailable (some placed work can "
                   "never complete under this failure model)\n";
    else
      std::cout << "\ncampaign makespan: " << fmt_duration(result.makespan)
                << "\n";
    print_fault_stats(result.fault);
    obs_session.finish();
    return 0;
  }

  std::unique_ptr<middleware::Deployment> deployment;
  if (args.flag("hierarchy")) {
    auto tree = std::make_unique<middleware::HierarchicalAgent>(
        grid, static_cast<int>(args.get_int("branching")));
    std::cout << "Hierarchical deployment: " << tree->agent_count()
              << " local agents, depth " << tree->tree_depth() << "\n";
    deployment = std::move(tree);
  } else {
    deployment = std::make_unique<middleware::MasterAgent>(grid);
  }

  run_grid_campaign(*deployment, grid, ensemble, heuristic, args);
  deployment.reset();  // join SeD threads before the exporters run
  obs_session.finish();
  return 0;
}

int cmd_sweep(const std::vector<std::string>& argv) {
  ArgParser args("oagrid_cli sweep",
                 "Gain-vs-resources sweep (Figure 8 regeneration)");
  args.add_option("from", "first resource count", "20")
      .add_option("to", "last resource count", "120")
      .add_option("step", "resource increment", "4")
      .add_option("scenarios", "independent scenarios (NS)", "10")
      .add_option("months", "months per scenario (NM)", "150")
      .add_option("profile", "built-in cluster profile 0-4", "1")
      .add_option("threads", "worker cap for the parallel sweep (0 = all)",
                  "0")
      .add_flag("csv", "emit CSV instead of an aligned table");
  add_fault_options(args);
  add_net_options(args);
  add_obs_options(args);
  args.parse(argv);
  const ObsSession obs_session(args);

  const appmodel::Ensemble ensemble{args.get_int("scenarios"),
                                    args.get_int("months")};
  sim::SimOptions sweep_options;
  if (const auto network = network_from(args, 1))
    sweep_options.restart_handoff =
        network->transfer_time(0, 0, appmodel::VolumeParams{}.restart_mb);
  std::vector<ProcCount> resource_grid;
  for (long long r = args.get_int("from"); r <= args.get_int("to");
       r += args.get_int("step"))
    resource_grid.push_back(static_cast<ProcCount>(r));
  const int profile = static_cast<int>(args.get_int("profile"));
  const auto failure_model = fault_model_from(args, 1);
  if (failure_model && !resource_grid.empty()) {
    sweep_options.fault.model = &*failure_model;
    sweep_options.fault.cluster = 0;
    sweep_options.fault.recovery =
        fault::recovery_policy_from(args.get("recovery"));
    // The automatic cadence is anchored on the smallest swept cluster (the
    // slowest months, hence the most conservative checkpoint interval).
    const auto anchor =
        platform::make_builtin_cluster(profile, resource_grid.front());
    const Seconds month_seconds =
        static_cast<double>(ensemble.scenarios) /
        sched::best_throughput(anchor, ensemble.scenarios);
    sweep_options.fault.checkpoint_months = checkpoint_cadence_from(
        args, *failure_model, month_seconds, static_cast<MonthIndex>(ensemble.months),
        sweep_options.restart_handoff);
    sweep_options.fault.migrate_staging = sweep_options.restart_handoff;
  }

  // One cell = four heuristics on one cluster size; cells are independent and
  // every makespan flows through the eval cache, so a repeated sweep over an
  // overlapping resource range is mostly cache hits. Row order (hence output)
  // is independent of the thread count.
  struct SweepCell {
    Seconds basic = 0.0;
    std::array<Seconds, 3> improved{};
  };
  const std::vector<SweepCell> cells = parallel_transform(
      shared_pool(), resource_grid.size(),
      [&](std::size_t i) {
        const auto cluster =
            platform::make_builtin_cluster(profile, resource_grid[i]);
        auto eval = [&](sched::Heuristic h) {
          return sim::cached_makespan(cluster,
                                      sched::make_schedule(h, cluster, ensemble),
                                      ensemble, sweep_options);
        };
        SweepCell cell;
        cell.basic = eval(sched::Heuristic::kBasic);
        cell.improved = {eval(sched::Heuristic::kRedistribute),
                         eval(sched::Heuristic::kAllForMain),
                         eval(sched::Heuristic::kKnapsack)};
        return cell;
      },
      static_cast<std::size_t>(args.get_int("threads")));

  TableWriter table({"R", "basic [s]", "gain1 %", "gain2 %", "gain3 %"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    std::vector<std::string> row{std::to_string(resource_grid[i]),
                                 fmt(cell.basic, 0)};
    for (const Seconds ms : cell.improved)
      row.push_back(fmt(100.0 * (cell.basic - ms) / cell.basic, 2));
    table.add_row(row);
  }
  if (args.flag("csv"))
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  obs_session.finish();
  return 0;
}

struct ServeEntry {
  service::CampaignSpec spec;
  Seconds at = 0.0;
};

/// Parses the --campaigns list: `owner:NSxNM[:wW][@arrival]`, comma
/// separated, in non-decreasing arrival order (the service's submission
/// invariant). Example: "alice:3x12,bob:2x12:w2,carol:2x8@20000".
std::vector<ServeEntry> parse_campaigns(const std::string& text) {
  const auto bad = [](const std::string& item) {
    return std::invalid_argument("bad campaign '" + item +
                                 "' (expected owner:NSxNM[:wW][@arrival])");
  };
  std::vector<ServeEntry> entries;
  std::stringstream list(text);
  std::string item;
  while (std::getline(list, item, ',')) {
    if (item.empty()) continue;
    ServeEntry entry;
    std::string body = item;
    if (const auto at = body.find('@'); at != std::string::npos) {
      entry.at = std::stod(body.substr(at + 1));
      body.resize(at);
    }
    std::vector<std::string> parts;
    std::stringstream fields(body);
    for (std::string part; std::getline(fields, part, ':');)
      parts.push_back(part);
    if (parts.size() < 2 || parts.size() > 3) throw bad(item);
    entry.spec.owner = parts[0];
    const auto x = parts[1].find('x');
    if (x == std::string::npos) throw bad(item);
    entry.spec.scenarios =
        static_cast<Count>(std::stoll(parts[1].substr(0, x)));
    entry.spec.months = static_cast<Count>(std::stoll(parts[1].substr(x + 1)));
    if (parts.size() == 3) {
      if (parts[2].size() < 2 || parts[2][0] != 'w') throw bad(item);
      entry.spec.weight = std::stod(parts[2].substr(1));
    }
    entries.push_back(std::move(entry));
  }
  if (entries.empty())
    throw std::invalid_argument("--campaigns lists no campaigns");
  return entries;
}

int cmd_serve(const std::vector<std::string>& argv) {
  ArgParser args("oagrid_cli serve",
                 "Multi-tenant campaign service with a crash-recoverable "
                 "journal");
  args.add_option("campaigns",
                  "comma list owner:NSxNM[:wW][@arrival], arrivals "
                  "non-decreasing",
                  "alice:3x12,bob:2x12:w2,carol:2x8@20000")
      .add_option("clusters", "number of built-in clusters (1-5)", "3")
      .add_option("resources", "processors per cluster", "25")
      .add_option("grid-file", "platform description file", "")
      .add_option("policy", "queue policy: fifo | fair | srmf", "fair")
      .add_option("heuristic", "grouping heuristic", "knapsack")
      .add_option("estimator",
                  "performance backend: analytic | sim | middleware",
                  "analytic")
      .add_option("max-active", "concurrently running tenants", "4")
      .add_option("queue-capacity", "admission-control queue bound", "64")
      .add_option("journal",
                  "journal directory: enables crash recovery (created if "
                  "missing; without --resume any previous journal there is "
                  "discarded)",
                  "")
      .add_option("snapshot-every",
                  "journal records between compacting snapshots (0 = never)",
                  "0")
      .add_option("kill-after",
                  "crash injection: die after N journal appends (-1 = off)",
                  "-1")
      .add_option("journal-batch",
                  "group-commit journaling, one flush per service tick "
                  "(on | off; bytes on disk are identical either way)",
                  "on")
      .add_option("threads",
                  "threads for batched performance estimation "
                  "(1 = serial, 0 = all cores; results are identical)",
                  "1")
      .add_flag("resume",
                "recover from --journal, then run the not-yet-journaled "
                "tail of --campaigns");
  add_fault_options(args);
  add_obs_options(args);
  args.parse(argv);
  const ObsSession obs_session(args);

  const platform::Grid grid = [&] {
    const std::string file = args.get("grid-file");
    if (!file.empty()) {
      std::ifstream in(file);
      if (!in) throw std::invalid_argument("cannot open " + file);
      return platform::parse_grid(in);
    }
    return platform::make_builtin_grid(
               static_cast<ProcCount>(args.get_int("resources")))
        .prefix(static_cast<int>(args.get_int("clusters")));
  }();

  service::ServiceOptions options;
  options.policy = service::queue_policy_from(args.get("policy"));
  options.heuristic = heuristic_from(args.get("heuristic"));
  options.max_active = static_cast<int>(args.get_int("max-active"));
  options.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-capacity"));
  options.journal_dir = args.get("journal");
  options.snapshot_every = args.get_int("snapshot-every");
  options.kill_after_records = args.get_int("kill-after");
  if (const std::string batch = args.get("journal-batch"); batch == "on")
    options.group_commit = true;
  else if (batch == "off")
    options.group_commit = false;
  else
    throw std::invalid_argument("--journal-batch must be on or off");
  options.estimator_threads =
      static_cast<std::size_t>(args.get_int("threads"));
  std::unique_ptr<service::PerfEstimator> estimator;
  if (const std::string name = args.get("estimator"); name == "sim")
    estimator = std::make_unique<service::SimEstimator>();
  else if (name == "middleware")
    estimator = std::make_unique<service::MiddlewareEstimator>();
  else if (name != "analytic")
    throw std::invalid_argument("unknown estimator '" + name +
                                "' (analytic | sim | middleware)");
  options.estimator = estimator.get();

  const auto failure_model = fault_model_from(args, grid.cluster_count());
  std::unique_ptr<service::FailureAwareEstimator> failure_estimator;
  if (failure_model) {
    if (!estimator) estimator = std::make_unique<service::AnalyticEstimator>();
    // The closed-form inflation has no per-checkpoint cost to weigh, so the
    // automatic cadence collapses to the monthly restart.
    const long long cadence = args.get_int("checkpoint-months");
    failure_estimator = std::make_unique<service::FailureAwareEstimator>(
        *estimator, grid, *failure_model,
        cadence > 0 ? static_cast<MonthIndex>(cadence) : 1);
    options.estimator = failure_estimator.get();
  }

  const bool resume = args.flag("resume");
  if (resume && options.journal_dir.empty())
    throw std::invalid_argument("--resume needs --journal DIR");
  if (!options.journal_dir.empty()) {
    std::filesystem::create_directories(options.journal_dir);
    if (!resume) {
      // A fresh serve owns the directory: drop any previous run's state so
      // stale snapshots cannot outlive the journal they belong to.
      std::filesystem::remove(
          service::CampaignService::journal_path(options.journal_dir));
      std::filesystem::remove(
          service::CampaignService::snapshot_path(options.journal_dir));
    }
  }

  service::CampaignService svc(grid, options);
  if (resume) {
    const service::RecoveryReport report = svc.recover();
    std::cout << "recovery: "
              << (report.journal_found ? "journal found" : "no journal")
              << ", " << report.replayed_records << " records replayed";
    if (report.snapshot_used)
      std::cout << ", snapshot@" << report.snapshot_seq;
    if (report.torn_tail)
      std::cout << ", torn tail (" << report.dropped_bytes
                << " bytes dropped)";
    std::cout << ", clock at " << fmt_duration(report.resume_time) << "\n";
  }

  const std::vector<ServeEntry> entries = parse_campaigns(args.get("campaigns"));
  const std::size_t known = svc.campaign_ids().size();
  if (known > 0)
    std::cout << known << " campaigns already journaled, submitting "
              << (entries.size() > known ? entries.size() - known : 0)
              << " more\n";
  for (std::size_t i = known; i < entries.size(); ++i)
    (void)svc.submit(entries[i].spec, entries[i].at);

  const bool completed = svc.run();

  TableWriter table({"id", "owner", "w", "NSxNM", "status", "admitted",
                     "finished", "makespan"});
  for (const service::CampaignId id : svc.campaign_ids()) {
    const service::CampaignState& state = svc.campaign(id);
    const bool done = state.status == service::CampaignStatus::kCompleted;
    table.add_row({std::to_string(id), state.spec.owner,
                   fmt(state.spec.weight, 1),
                   std::to_string(state.spec.scenarios) + "x" +
                       std::to_string(state.spec.months),
                   to_string(state.status),
                   done || state.status == service::CampaignStatus::kRunning
                       ? fmt_duration(state.admit_time)
                       : "-",
                   done ? fmt_duration(state.finish_time) : "-",
                   done ? fmt_duration(state.makespan()) : "-"});
  }
  table.print(std::cout);
  std::cout << "\nservice clock: " << fmt_duration(svc.now()) << ", "
            << svc.lease_changes() << " lease changes, journal seq "
            << svc.journal_seq() << "\n";
  obs_session.finish();
  if (!completed) {
    std::cout << "service killed by --kill-after; rerun with --resume to "
                 "continue\n";
    return 3;
  }
  return 0;
}

int cmd_calibrate(const std::vector<std::string>& argv) {
  ArgParser args("oagrid_cli calibrate",
                 "Benchmark the real climate pipeline and emit a grid file");
  args.add_option("reps", "months timed per configuration", "2")
      .add_option("resources", "processor count for the emitted cluster", "32")
      .add_option("name", "cluster name in the emitted file", "this-machine");
  args.parse(argv);

  std::cerr << "calibrating (96x192 grid, " << args.get_int("reps")
            << " reps per G)...\n";
  const climate::CalibrationResult result = climate::calibrate_pipeline(
      climate::calibration_grade_params(),
      static_cast<int>(args.get_int("reps")));
  const platform::Cluster cluster = result.to_cluster(
      args.get("name"), static_cast<ProcCount>(args.get_int("resources")));
  platform::Grid grid;
  grid.add_cluster(cluster);
  platform::write_grid(std::cout, grid);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage: oagrid_cli "
      "<schedule|simulate|grid|serve|sweep|calibrate|dynamic|export> "
      "[options]\n"
      "       oagrid_cli <command> --help\n";
  if (argc < 2) {
    std::cerr << usage;
    return 2;
  }
  const std::string command = argv[1];
  std::vector<std::string> rest;
  bool help = false;
  for (int i = 2; i < argc; ++i) {
    rest.emplace_back(argv[i]);
    if (rest.back() == "--help") help = true;
  }

  try {
    if (command == "schedule") return cmd_schedule(rest);
    if (command == "simulate") return cmd_simulate(rest);
    if (command == "grid") return cmd_grid(rest);
    if (command == "serve") return cmd_serve(rest);
    if (command == "sweep") return cmd_sweep(rest);
    if (command == "calibrate") return cmd_calibrate(rest);
    if (command == "dynamic") return cmd_dynamic(rest);
    if (command == "export") return cmd_export(rest);
    std::cerr << "unknown command '" << command << "'\n" << usage;
    return 2;
  } catch (const std::exception& e) {
    // --help routes the usage text through the exception channel.
    std::cerr << (help ? "" : "error: ") << e.what() << "\n";
    return help ? 0 : 1;
  }
}
