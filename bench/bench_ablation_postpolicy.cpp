/// \file bench_ablation_postpolicy.cpp
/// \brief Ablation: where should post-processing tasks run? Isolates the
/// mechanism behind Improvement 2 by fixing the grouping (the basic uniform
/// choice) and varying only the post placement:
///   (a) basic pool — all leftover processors dedicated to posts;
///   (b) minimal pool — just enough processors to keep up (Imp. 1's pool);
///   (c) all-at-end — zero pool, posts after the last main task (Imp. 2).
/// The freed processors in (b)/(c) are NOT given to groups, so any makespan
/// change is attributable to post placement alone.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sched/makespan_model.hpp"
#include "sim/ensemble_sim.hpp"

int main() {
  using namespace oagrid;
  bench::banner("Ablation: post-processing placement policy",
                "Same grouping, three post policies; NS = 10, NM = 150");

  const appmodel::Ensemble ensemble{10, 150};
  TableWriter table({"R", "G", "pool=R2 [s]", "minimal pool [s]",
                     "all-at-end [s]", "worst vs best %"});

  for (ProcCount r = 20; r <= 120; r += 10) {
    const auto cluster = platform::make_builtin_cluster(1, r);
    const auto choice = sched::best_uniform_grouping(cluster, ensemble);

    auto simulate = [&](ProcCount pool, sched::PostPolicy policy) {
      sched::GroupSchedule s;
      s.group_sizes.assign(static_cast<std::size_t>(choice.estimate.nbmax),
                           choice.group_size);
      s.post_pool = pool;
      s.post_policy = policy;
      return sim::simulate_ensemble(cluster, s, ensemble).makespan;
    };

    const Seconds full_pool =
        simulate(choice.estimate.r2, sched::PostPolicy::kPoolThenRetired);
    // Minimal pool: ceil(nbmax / floor(TG/TP)) processors.
    const auto per_proc = static_cast<Count>(
        cluster.main_time(choice.group_size) / cluster.post_time());
    const ProcCount minimal =
        per_proc > 0
            ? static_cast<ProcCount>(std::min<Count>(
                  (choice.estimate.nbmax + per_proc - 1) / per_proc,
                  choice.estimate.r2))
            : choice.estimate.r2;
    const Seconds min_pool =
        simulate(minimal, sched::PostPolicy::kPoolThenRetired);
    const Seconds at_end = simulate(0, sched::PostPolicy::kAllAtEnd);

    const Seconds best = std::min({full_pool, min_pool, at_end});
    const Seconds worst = std::max({full_pool, min_pool, at_end});
    table.add_row({std::to_string(r), std::to_string(choice.group_size),
                   fmt(full_pool, 0), fmt(min_pool, 0), fmt(at_end, 0),
                   fmt(100.0 * (worst - best) / best, 2)});
  }
  table.print(std::cout);
  std::cout
      << "\nReading: with the grouping fixed, placement changes little — the "
         "improvements' gains come from giving the freed processors to the "
         "groups, not from post placement itself (the ablation's point).\n";
  return 0;
}
