/// \file bench_hierarchy.cpp
/// \brief Middleware-shape ablation: the Figure 9 protocol through a flat
/// Master Agent vs DIET-style Local Agent trees of different branching
/// factors. Results must be identical; the cost is protocol latency plus
/// thread bookkeeping.

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "middleware/client.hpp"
#include "middleware/local_agent.hpp"
#include "middleware/master_agent.hpp"
#include "platform/profiles.hpp"

int main() {
  using namespace oagrid;
  bench::banner("Deployment-shape ablation (DIET agent hierarchy)",
                "Flat MA vs LA trees; identical campaign results required");

  const auto grid = platform::make_builtin_grid(25);
  const appmodel::Ensemble ensemble{10, 24};
  using clock = std::chrono::steady_clock;

  TableWriter table({"deployment", "agents", "depth", "campaign makespan [s]",
                     "protocol wall time [ms]"});

  Seconds reference = -1.0;
  {
    middleware::MasterAgent flat(grid);
    middleware::Client client(flat);
    const auto t0 = clock::now();
    const auto result = client.submit(ensemble, sched::Heuristic::kKnapsack);
    const auto t1 = clock::now();
    reference = result.makespan;
    table.add_row({"flat (MA only)", "0", "0", fmt(result.makespan, 0),
                   fmt(std::chrono::duration<double, std::milli>(t1 - t0).count(), 1)});
    flat.shutdown();
  }
  for (const int branching : {2, 3, 5}) {
    middleware::HierarchicalAgent tree(grid, branching);
    middleware::Client client(tree);
    const auto t0 = clock::now();
    const auto result = client.submit(ensemble, sched::Heuristic::kKnapsack);
    const auto t1 = clock::now();
    table.add_row({"LA tree, branching " + std::to_string(branching),
                   std::to_string(tree.agent_count()),
                   std::to_string(tree.tree_depth()), fmt(result.makespan, 0),
                   fmt(std::chrono::duration<double, std::milli>(t1 - t0).count(), 1)});
    if (std::abs(result.makespan - reference) > 1e-6)
      std::cout << "ERROR: hierarchical result diverged from flat!\n";
    tree.shutdown();
  }
  table.print(std::cout);
  std::cout << "\nAll shapes compute the identical campaign; the tree buys "
               "fan-out scalability (no agent talks to more than `branching` "
               "children) at microseconds of forwarding latency.\n";
  return 0;
}
