/// \file bench_dynamic.cpp
/// \brief Extension bench: the cost of the paper's "a scenario cannot change
/// location" rule on a drifting grid. Compares the static Algorithm-1
/// placement against unstarted-only rebalancing and restart-file migration
/// across drift intensities (fluid execution model, mean over 20 seeds).

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sim/fluid_grid.hpp"

int main() {
  using namespace oagrid;
  bench::banner("Dynamic grid (extension — beyond the paper's §5)",
                "Static vs migrating placement under speed drift; 5 clusters "
                "x 25 procs, NS = 10, NM = 120, 20 seeds");

  const auto grid = platform::make_builtin_grid(25);
  const appmodel::Ensemble ensemble{10, 120};

  TableWriter table({"drift sigma/epoch", "static [h]", "unstarted [h]",
                     "migrate [h]", "migrate gain %", "migrations (mean)"});
  for (const double sigma : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    RunningStats fixed_ms, unstarted_ms, migrate_ms, moves;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      sim::DriftModel drift;
      drift.sigma = sigma;
      drift.epoch_length = 4.0 * 3600.0;
      drift.seed = seed;
      fixed_ms.add(sim::simulate_dynamic_grid(grid, ensemble,
                                              sim::GridPolicy::kStatic, drift)
                       .makespan);
      unstarted_ms.add(
          sim::simulate_dynamic_grid(grid, ensemble,
                                     sim::GridPolicy::kRebalanceUnstarted,
                                     drift)
              .makespan);
      const auto migrated = sim::simulate_dynamic_grid(
          grid, ensemble, sim::GridPolicy::kMigrateWithState, drift);
      migrate_ms.add(migrated.makespan);
      moves.add(static_cast<double>(migrated.migrations));
      if (sigma == 0.0) break;  // deterministic
    }
    table.add_row(
        {fmt(sigma, 2), fmt(fixed_ms.mean() / 3600, 2),
         fmt(unstarted_ms.mean() / 3600, 2), fmt(migrate_ms.mean() / 3600, 2),
         fmt(bench::gain_percent(fixed_ms.mean(), migrate_ms.mean()), 2),
         fmt(moves.mean(), 1)});
  }
  table.print(std::cout);
  std::cout
      << "\nReading: even with no drift, stateful migration ekes out a little "
         "(a mid-run move splits one scenario's months across two clusters — "
         "fractional balancing no static integral assignment can express); "
         "as drift grows the gap widens to several percent. The free "
         "unstarted-only relaxation captures part of it. This quantifies "
         "what the paper's 'cannot change location' rule costs on a live "
         "grid.\n";
  return 0;
}
