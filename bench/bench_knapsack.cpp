/// \file bench_knapsack.cpp
/// \brief Microbenchmarks of the three knapsack solvers over the paper's
/// item universe (group sizes 4..11), plus the grouping heuristics end to
/// end. Google-benchmark binary: run with --benchmark_filter=... to narrow.

#include <benchmark/benchmark.h>

#include <string>

#include "appmodel/ensemble.hpp"
#include "bench_util.hpp"
#include "knapsack/knapsack.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sched/makespan_model.hpp"

namespace {

using namespace oagrid;

knapsack::Problem paper_problem(int capacity, Count max_items) {
  knapsack::Problem p;
  const auto cluster = platform::make_builtin_cluster(1, capacity);
  for (ProcCount g = 4; g <= 11; ++g)
    p.items.push_back(knapsack::Item{g, 1.0 / cluster.main_time(g)});
  p.capacity = capacity;
  p.max_items = max_items;
  return p;
}

void BM_KnapsackDP(benchmark::State& state) {
  const auto problem =
      paper_problem(static_cast<int>(state.range(0)), state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(knapsack::solve_dp(problem));
}
BENCHMARK(BM_KnapsackDP)
    ->Args({53, 10})
    ->Args({120, 10})
    ->Args({512, 40})
    ->Args({2048, 100});

void BM_KnapsackBranchBound(benchmark::State& state) {
  const auto problem =
      paper_problem(static_cast<int>(state.range(0)), state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(knapsack::solve_branch_bound(problem));
}
BENCHMARK(BM_KnapsackBranchBound)->Args({53, 10})->Args({120, 10});

void BM_KnapsackGreedy(benchmark::State& state) {
  const auto problem =
      paper_problem(static_cast<int>(state.range(0)), state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(knapsack::solve_greedy(problem));
  // Report the optimality gap alongside the speed.
  const double dp = knapsack::solve_dp(problem).value;
  const double greedy = knapsack::solve_greedy(problem).value;
  state.counters["gap_%"] = 100.0 * (dp - greedy) / dp;
}
BENCHMARK(BM_KnapsackGreedy)->Args({53, 10})->Args({120, 10});

void BM_KnapsackExhaustive(benchmark::State& state) {
  const auto problem =
      paper_problem(static_cast<int>(state.range(0)), state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(knapsack::solve_exhaustive(problem));
}
BENCHMARK(BM_KnapsackExhaustive)->Args({53, 10})->Args({64, 6});

void BM_BestUniformGrouping(benchmark::State& state) {
  const auto cluster =
      platform::make_builtin_cluster(1, static_cast<ProcCount>(state.range(0)));
  const appmodel::Ensemble ensemble{10, 1800};
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::best_uniform_grouping(cluster, ensemble));
}
BENCHMARK(BM_BestUniformGrouping)->Arg(53)->Arg(120);

void BM_KnapsackGroupingEndToEnd(benchmark::State& state) {
  const auto cluster =
      platform::make_builtin_cluster(1, static_cast<ProcCount>(state.range(0)));
  const appmodel::Ensemble ensemble{10, 1800};
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::knapsack_grouping(cluster, ensemble));
}
BENCHMARK(BM_KnapsackGroupingEndToEnd)->Arg(53)->Arg(120);

}  // namespace

int main(int argc, char** argv) {
  const std::string json = oagrid::bench::extract_bench_json(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  oagrid::bench::run_benchmarks(json);
  benchmark::Shutdown();
  return 0;
}
