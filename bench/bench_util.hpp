#pragma once
/// \file bench_util.hpp
/// \brief Shared helpers for the figure-reproduction bench binaries.

#include <iostream>
#include <string>

#include "common/types.hpp"

namespace oagrid::bench {

/// Percentage gain of `improved` over `baseline` (positive = improvement),
/// the quantity plotted in the paper's Figures 8 and 10.
inline double gain_percent(Seconds baseline, Seconds improved) {
  return 100.0 * (baseline - improved) / baseline;
}

/// Standard bench banner so every binary states which artifact it
/// regenerates.
inline void banner(const std::string& artifact, const std::string& summary) {
  std::cout << "================================================================\n"
            << "Reproduces: " << artifact << "\n"
            << summary << "\n"
            << "================================================================\n\n";
}

}  // namespace oagrid::bench
