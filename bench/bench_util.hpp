#pragma once
/// \file bench_util.hpp
/// \brief Shared helpers for the figure-reproduction bench binaries.

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace oagrid::bench {

/// Percentage gain of `improved` over `baseline` (positive = improvement),
/// the quantity plotted in the paper's Figures 8 and 10.
inline double gain_percent(Seconds baseline, Seconds improved) {
  return 100.0 * (baseline - improved) / baseline;
}

/// Standard bench banner so every binary states which artifact it
/// regenerates.
inline void banner(const std::string& artifact, const std::string& summary) {
  std::cout << "================================================================\n"
            << "Reproduces: " << artifact << "\n"
            << summary << "\n"
            << "================================================================\n\n";
}

/// Strips `--bench-json FILE` / `--bench-json=FILE` out of argv (it must be
/// removed before benchmark::Initialize rejects it as unrecognized) and
/// returns the file path, empty when the flag is absent.
inline std::string extract_bench_json(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench-json" && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    if (arg.rfind("--bench-json=", 0) == 0) {
      path = arg.substr(std::string("--bench-json=").size());
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return path;
}

/// Display reporter that forwards everything to the standard console
/// reporter and additionally collects one machine-readable record per
/// benchmark run, written as JSON in Finalize(). Used as the *display*
/// reporter (not google-benchmark's file reporter, which is tied to the
/// --benchmark_output flag), so `--bench-json` works standalone.
///
/// Record schema (stable; tools/check_bench_regression.py consumes it):
///   {"schema": 1,
///    "benchmarks": [{"name": str, "iterations": int,
///                    "real_ns_per_op": float, "cpu_ns_per_op": float,
///                    "counters": {str: float, ...}}, ...]}
/// Aggregate rows (mean/median/stddev of repetitions) and errored runs are
/// skipped: records are raw per-run measurements.
class BenchJsonReporter : public benchmark::BenchmarkReporter {
 public:
  explicit BenchJsonReporter(std::string path) : path_(std::move(path)) {}

  bool ReportContext(const Context& context) override {
    return console_.ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_.ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Record record;
      record.name = run.benchmark_name();
      record.iterations = run.iterations;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      record.real_ns_per_op = run.real_accumulated_time * 1e9 / iters;
      record.cpu_ns_per_op = run.cpu_accumulated_time * 1e9 / iters;
      for (const auto& [name, counter] : run.counters)
        record.counters.emplace_back(name, counter.value);
      records_.push_back(std::move(record));
    }
  }

  void Finalize() override {
    console_.Finalize();
    std::ofstream out(path_);
    if (!out) throw std::runtime_error("cannot write bench JSON: " + path_);
    out << "{\n  \"schema\": 1,\n  \"benchmarks\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << (i == 0 ? "\n" : ",\n");
      out << "    {\"name\": \"" << escaped(r.name)
          << "\", \"iterations\": " << r.iterations
          << ", \"real_ns_per_op\": " << r.real_ns_per_op
          << ", \"cpu_ns_per_op\": " << r.cpu_ns_per_op << ", \"counters\": {";
      for (std::size_t c = 0; c < r.counters.size(); ++c) {
        out << (c == 0 ? "" : ", ") << "\"" << escaped(r.counters[c].first)
            << "\": " << r.counters[c].second;
      }
      out << "}}";
    }
    out << "\n  ]\n}\n";
    std::cout << "bench JSON written to " << path_ << " (" << records_.size()
              << " records)\n";
  }

 private:
  struct Record {
    std::string name;
    std::int64_t iterations = 0;
    double real_ns_per_op = 0.0;
    double cpu_ns_per_op = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };

  static std::string escaped(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
      if (ch == '"' || ch == '\\') {
        out.push_back('\\');
        out.push_back(ch);
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        out.push_back(' ');
      } else {
        out.push_back(ch);
      }
    }
    return out;
  }

  std::string path_;
  benchmark::ConsoleReporter console_;
  std::vector<Record> records_;
};

/// Runs the registered benchmarks, mirroring results into `json_path` when
/// non-empty (console output is identical either way).
inline void run_benchmarks(const std::string& json_path) {
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
    return;
  }
  BenchJsonReporter reporter(json_path);
  benchmark::RunSpecifiedBenchmarks(&reporter);
}

}  // namespace oagrid::bench
