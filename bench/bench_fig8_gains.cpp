/// \file bench_fig8_gains.cpp
/// \brief Regenerates Figure 8: makespan gains (%) of the three improved
/// heuristics over the basic one, for R in [20, 120], averaged over the five
/// cluster profiles (mean and standard deviation per resource count — the
/// paper's error bars).
///
/// Expected shape (paper §4.3): the knapsack (gain 3) dominates at low R,
/// gains shrink as R grows and reach zero once R affords NS groups of 11;
/// gain 2 dips slightly negative at high R.

#include <iostream>

#include "bench_util.hpp"
#include "common/ascii_chart.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sim/ensemble_sim.hpp"

int main() {
  using namespace oagrid;
  bench::banner(
      "Figure 8 (gains of Improvements 1-3 vs the basic heuristic)",
      "R in [20, 120], NS = 10, NM = 150; mean +- stddev over 5 cluster profiles");

  const appmodel::Ensemble ensemble{10, 150};
  const sched::Heuristic improved[] = {sched::Heuristic::kRedistribute,
                                       sched::Heuristic::kAllForMain,
                                       sched::Heuristic::kKnapsack};

  std::vector<ProcCount> rs;
  for (ProcCount r = 20; r <= 120; r += 2) rs.push_back(r);

  // gains[h][cell] = RunningStats over the 5 profiles.
  std::vector<std::vector<RunningStats>> gains(
      3, std::vector<RunningStats>(rs.size()));

  parallel_for(0, rs.size(), [&](std::size_t cell) {
    const ProcCount r = rs[cell];
    for (int profile = 0; profile < 5; ++profile) {
      const auto cluster = platform::make_builtin_cluster(profile, r);
      const Seconds basic =
          sim::simulate_with_heuristic(cluster, sched::Heuristic::kBasic,
                                       ensemble)
              .makespan;
      for (int h = 0; h < 3; ++h) {
        const Seconds ms =
            sim::simulate_with_heuristic(cluster, improved[static_cast<std::size_t>(h)],
                                         ensemble)
                .makespan;
        gains[static_cast<std::size_t>(h)][cell].add(
            bench::gain_percent(basic, ms));
      }
    }
  });

  const char* names[] = {"Gain 1 (redistribute)", "Gain 2 (all-for-main)",
                         "Gain 3 (knapsack)"};
  for (int h = 0; h < 3; ++h) {
    std::cout << names[h] << " vs resources:\n";
    TableWriter table({"R", "mean gain %", "stddev", "min", "max"});
    ChartSeries mean_series{names[h], static_cast<char>('1' + h), {}, {}};
    for (std::size_t cell = 0; cell < rs.size(); ++cell) {
      const Summary s = gains[static_cast<std::size_t>(h)][cell].summary();
      mean_series.xs.push_back(rs[cell]);
      mean_series.ys.push_back(s.mean);
      // Print a regular sample plus every cell where something happened, so
      // the table does not hide the spikes between sampled rows.
      if (rs[cell] % 8 == 0 || cell + 1 == rs.size() ||
          std::abs(s.mean) > 0.25)
        table.add_row({std::to_string(rs[cell]), fmt(s.mean, 2),
                       fmt(s.stddev, 2), fmt(s.min, 2), fmt(s.max, 2)});
    }
    table.print(std::cout);
    AsciiChart chart(100, 12);
    chart.set_y_range(-3.0, 15.0);
    chart.add_series(mean_series);
    std::cout << chart.render() << "\n";
  }

  // Aggregate headline matching the paper's abstract ("up to 12%").
  double best_gain = 0;
  ProcCount best_r = 0;
  for (std::size_t cell = 0; cell < rs.size(); ++cell) {
    const double g = gains[2][cell].max();
    if (g > best_gain) {
      best_gain = g;
      best_r = rs[cell];
    }
  }
  std::cout << "Best knapsack gain observed: " << fmt(best_gain, 1) << "% at R="
            << best_r << " (paper reports gains up to ~12%)\n";
  return 0;
}
