/// \file bench_fig10_grid.cpp
/// \brief Regenerates Figure 10: gains of the three improved heuristics on a
/// heterogeneous grid with Algorithm-1 repartition, for 2..5 clusters of
/// 11..99 resources each. The x axis uses the paper's encoding: "2.25" means
/// two clusters with 25 resources each.
///
/// Expected shape (paper §6): best gains near 12%, common gains 0-8%, stable
/// zero-gain phases where the slowest cluster dominates, and gains shrinking
/// as clusters are added.

#include <iostream>

#include "bench_util.hpp"
#include "common/ascii_chart.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sim/grid_sim.hpp"

int main() {
  using namespace oagrid;
  bench::banner("Figure 10 (gains with DAG repartition on 2-5 clusters)",
                "x = clusters + resources/100 (paper encoding), NS = 10, NM = 60");

  const appmodel::Ensemble ensemble{10, 60};
  const sched::Heuristic improved[] = {sched::Heuristic::kRedistribute,
                                       sched::Heuristic::kAllForMain,
                                       sched::Heuristic::kKnapsack};

  struct Cell {
    int clusters;
    ProcCount resources;
    double x;
    double gain[3];
  };
  std::vector<Cell> cells;
  for (int n = 2; n <= 5; ++n)
    for (ProcCount r = 11; r <= 99; r += 8)
      cells.push_back(Cell{n, r, n + r / 100.0, {0, 0, 0}});

  parallel_for(0, cells.size(), [&](std::size_t i) {
    Cell& cell = cells[i];
    const auto grid =
        platform::make_builtin_grid(cell.resources).prefix(cell.clusters);
    const Seconds basic =
        sim::simulate_grid(grid, ensemble, sched::Heuristic::kBasic).makespan;
    for (int h = 0; h < 3; ++h) {
      const Seconds ms =
          sim::simulate_grid(grid, ensemble,
                             improved[static_cast<std::size_t>(h)])
              .makespan;
      cell.gain[h] = bench::gain_percent(basic, ms);
    }
  });

  TableWriter table({"x (c.rr)", "clusters", "R/cluster", "gain1 %", "gain2 %",
                     "gain3 %"});
  ChartSeries s1{"gain1 (redistribute)", '1', {}, {}};
  ChartSeries s2{"gain2 (all-for-main)", '2', {}, {}};
  ChartSeries s3{"gain3 (knapsack)", '3', {}, {}};
  double best = 0;
  int zero_phase = 0;
  for (const Cell& cell : cells) {
    table.add_row({fmt(cell.x, 2), std::to_string(cell.clusters),
                   std::to_string(cell.resources), fmt(cell.gain[0], 2),
                   fmt(cell.gain[1], 2), fmt(cell.gain[2], 2)});
    s1.xs.push_back(cell.x);
    s1.ys.push_back(cell.gain[0]);
    s2.xs.push_back(cell.x);
    s2.ys.push_back(cell.gain[1]);
    s3.xs.push_back(cell.x);
    s3.ys.push_back(cell.gain[2]);
    best = std::max({best, cell.gain[0], cell.gain[1], cell.gain[2]});
    if (std::abs(cell.gain[2]) < 0.25) ++zero_phase;
  }
  table.print(std::cout);

  std::cout << "\nFigure 10 shape (y = gain %, x = clusters + R/100):\n";
  AsciiChart chart(110, 14);
  chart.set_y_range(-3.0, 14.0);
  chart.add_series(s1);
  chart.add_series(s2);
  chart.add_series(s3);
  std::cout << chart.render();

  std::cout << "\nBest gain: " << fmt(best, 1)
            << "% (paper: almost 12%); zero-gain cells (slowest-cluster-bound "
               "stable phases): "
            << zero_phase << " of " << cells.size() << "\n";
  return 0;
}
