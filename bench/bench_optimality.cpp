/// \file bench_optimality.cpp
/// \brief How good are the paper's heuristics in absolute terms? The paper
/// only compares heuristics to each other; this bench adds two yardsticks it
/// lacks: the exhaustive grouping oracle (optimal multiset under the same
/// execution model) and the chain/area lower bound.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sched/lower_bounds.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/local_search.hpp"
#include "sim/optimal_search.hpp"

int main() {
  using namespace oagrid;
  bench::banner("Optimality gaps (extension — not in the paper)",
                "Heuristics vs the exhaustive grouping oracle and lower bounds;"
                " NS = 6, NM = 12");

  const appmodel::Ensemble ensemble{6, 12};
  TableWriter table({"R", "oracle [s]", "candidates", "LB [s]", "basic gap %",
                     "imp1 %", "imp2 %", "knapsack %", "local-search %",
                     "LS evals"});

  double worst_knapsack_gap = 0.0, worst_search_gap = 0.0;
  for (const ProcCount r : {13, 17, 21, 25, 29, 33, 37, 41, 45}) {
    const auto cluster = platform::make_builtin_cluster(1, r);
    const auto oracle = sim::optimal_grouping_search(cluster, ensemble);
    const Seconds bound =
        sched::ensemble_lower_bounds(cluster, ensemble).combined();

    auto gap = [&](sched::Heuristic h) {
      const Seconds ms =
          sim::simulate_with_heuristic(cluster, h, ensemble).makespan;
      return 100.0 * (ms - oracle.makespan) / oracle.makespan;
    };
    const double knap_gap = gap(sched::Heuristic::kKnapsack);
    worst_knapsack_gap = std::max(worst_knapsack_gap, knap_gap);
    const auto search = sim::local_search_grouping(cluster, ensemble);
    const double search_gap =
        100.0 * (search.makespan - oracle.makespan) / oracle.makespan;
    worst_search_gap = std::max(worst_search_gap, search_gap);
    table.add_row({std::to_string(r), fmt(oracle.makespan, 0),
                   std::to_string(oracle.evaluated), fmt(bound, 0),
                   fmt(gap(sched::Heuristic::kBasic), 2),
                   fmt(gap(sched::Heuristic::kRedistribute), 2),
                   fmt(gap(sched::Heuristic::kAllForMain), 2),
                   fmt(knap_gap, 2), fmt(search_gap, 2),
                   std::to_string(search.evaluations)});
  }
  table.print(std::cout);
  std::cout << "\nWorst knapsack-to-oracle gap: " << fmt(worst_knapsack_gap, 2)
            << "%; multi-start local search closes it to "
            << fmt(worst_search_gap, 2)
            << "% at a few dozen simulations per instance — the cheap "
               "heuristic is near-optimal for its model, which is the "
               "strongest justification of the paper's design the paper "
               "itself never prints.\n";
  return 0;
}
