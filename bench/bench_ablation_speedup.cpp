/// \file bench_ablation_speedup.cpp
/// \brief Ablation: how sensitive are the scheduling decisions to the shape
/// of the speedup model? The paper benchmarked T[G] on real clusters; we
/// synthesize it. This bench recalibrates three model families (coupled,
/// Amdahl, power-law) to the same anchor T(11) = 1260 s and compares the
/// grouping decisions and knapsack gains they induce.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sched/makespan_model.hpp"
#include "sim/ensemble_sim.hpp"

int main() {
  using namespace oagrid;
  bench::banner("Ablation: speedup-model family",
                "Coupled vs Amdahl vs power-law tables, same T(11) anchor");

  const appmodel::Ensemble ensemble{10, 150};

  // Calibrate each family to T(11) ~ 1260 s.
  const platform::CoupledModel coupled;  // reference parameters
  // Amdahl: T(11) = t1 (alpha + (1-alpha)/11) = 1260 with alpha = 0.25.
  const double alpha = 0.25;
  const double t1_amdahl = 1260.0 / (alpha + (1 - alpha) / 11.0);
  const platform::AmdahlModel amdahl(t1_amdahl, alpha, 4, 11);
  // Power law: T(11) = t1 / 11^0.6 = 1260.
  const double t1_power = 1260.0 * std::pow(11.0, 0.6);
  const platform::PowerLawModel power(t1_power, 0.6, 4, 11);

  std::cout << "Calibrated tables:\n";
  TableWriter tables({"G", "coupled [s]", "amdahl [s]", "power-law [s]"});
  for (ProcCount g = 4; g <= 11; ++g)
    tables.add_row({std::to_string(g), fmt(coupled.time_on(g), 0),
                    fmt(amdahl.time_on(g), 0), fmt(power.time_on(g), 0)});
  tables.print(std::cout);

  std::cout << "\nDecisions and gains per model family:\n";
  TableWriter table({"R", "best G (coup/amd/pow)", "knapsack gain % (coup)",
                     "(amd)", "(pow)"});
  const platform::SpeedupModel* models[] = {&coupled, &amdahl, &power};
  for (ProcCount r = 20; r <= 120; r += 10) {
    ProcCount best_g[3];
    double gain[3];
    for (int m = 0; m < 3; ++m) {
      const platform::Cluster cluster("ablate", r, *models[m], 180.0);
      best_g[m] = sched::best_uniform_grouping(cluster, ensemble).group_size;
      const Seconds basic =
          sim::simulate_with_heuristic(cluster, sched::Heuristic::kBasic,
                                       ensemble)
              .makespan;
      const Seconds knap =
          sim::simulate_with_heuristic(cluster, sched::Heuristic::kKnapsack,
                                       ensemble)
              .makespan;
      gain[m] = bench::gain_percent(basic, knap);
    }
    table.add_row({std::to_string(r),
                   std::to_string(best_g[0]) + "/" + std::to_string(best_g[1]) +
                       "/" + std::to_string(best_g[2]),
                   fmt(gain[0], 2), fmt(gain[1], 2), fmt(gain[2], 2)});
  }
  table.print(std::cout);
  std::cout << "\nReading: the knapsack's advantage persists across model "
               "families — the reproduction's conclusions do not hinge on the "
               "synthesized table's exact shape.\n";
  return 0;
}
