/// \file bench_pipeline_volumes.cpp
/// \brief Regenerates the paper's §2 data claims from the real pipeline:
/// per-task roles, restart-exchange volume ("reaches 120 MB" on the real
/// model; scaled on the toy grid) and the compression step's effect ("the
/// volume of model diagnostic files is drastically reduced").

#include <iostream>

#include "bench_util.hpp"
#include "climate/calibration.hpp"
#include "climate/compress.hpp"
#include "climate/restart.hpp"
#include "climate/scenario_runner.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"

int main() {
  using namespace oagrid;
  bench::banner("§2 data volumes + pipeline calibration",
                "Restart size, diagnostic compression, measured task times");

  // Volumes at several grid resolutions (the real model's ~120 MB restart
  // corresponds to a much finer grid; the scaling is what matters).
  TableWriter volumes({"grid", "restart [KB]", "raw diag/month [KB]",
                       "compressed [KB]", "ratio"});
  for (const auto& [nlat, nlon] : {std::pair{12, 24}, std::pair{24, 48},
                                   std::pair{48, 96}}) {
    climate::ModelParams params;
    params.nlat = nlat;
    params.nlon = nlon;
    params.substeps = 60;  // keep diffusion stable at the finest grid
    climate::ScenarioConfig config;
    config.model = params;
    config.months = 3;
    const climate::ScenarioResult r = climate::run_scenario(config);
    const double raw_per_month =
        static_cast<double>(r.raw_diag_bytes) / config.months;
    const double comp_per_month =
        static_cast<double>(r.compressed_diag_bytes) / config.months;
    volumes.add_row({std::to_string(nlat) + "x" + std::to_string(nlon),
                     fmt(static_cast<double>(r.restart_bytes_per_month) / 1024, 1),
                     fmt(raw_per_month / 1024, 1), fmt(comp_per_month / 1024, 1),
                     fmt(raw_per_month / comp_per_month, 1)});
  }
  volumes.print(std::cout);

  // Calibration: the measured T[G] table of this machine (the paper's
  // benchmark step, Figure 1's numbers regenerated live).
  std::cout << "\nMeasured pipeline times on this machine (calibration-grade "
               "96x192 grid, 2 reps):\n";
  const climate::CalibrationResult calibration =
      climate::calibrate_pipeline(climate::calibration_grade_params(), 2);
  TableWriter times({"task", "processors", "measured [ms]"});
  for (ProcCount g = 4; g <= 11; ++g)
    times.add_row({"pcr (coupled month)", std::to_string(g),
                   fmt(calibration.main_times[static_cast<std::size_t>(g - 4)] * 1e3, 2)});
  times.add_row({"cof+emi+cd (post chain)", "1",
                 fmt(calibration.post_time * 1e3, 3)});
  times.print(std::cout);

  const double t4 = calibration.main_times.front();
  const double t11 = calibration.main_times.back();
  std::cout << "\nSpeedup T[4]/T[11] = " << fmt(t4 / t11, 2)
            << " with hardware_concurrency = " << default_parallelism()
            << " (the paper's Grid'5000 tables span ~3.7x on 8 real cores; "
               "on fewer cores the measured table is flat — the scheduler "
               "handles either shape)\n";
  return 0;
}
