/// \file bench_eval_cache.cpp
/// \brief Microbenchmarks of the shared evaluation cache (sim/eval_cache):
/// key construction, hit/miss probe latency, eviction churn, and the
/// end-to-end payoff — cached_makespan and local search on a warm cache over
/// the (R=64, NS=10) reference workload. Each bench exports its measured
/// cache hit rate as a user counter, which `--bench-json` carries into the
/// machine-readable records.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/eval_cache.hpp"
#include "sim/local_search.hpp"

namespace {

using namespace oagrid;

/// The reference workload of the perf acceptance criteria: 64 processors,
/// 10 scenarios.
platform::Cluster reference_cluster() {
  return platform::make_builtin_cluster(1, 64);
}

std::vector<MonthIndex> uniform_months(const appmodel::Ensemble& ensemble) {
  return std::vector<MonthIndex>(static_cast<std::size_t>(ensemble.scenarios),
                                 static_cast<MonthIndex>(ensemble.months));
}

void BM_EvalKeyBuild(benchmark::State& state) {
  const auto cluster = reference_cluster();
  const appmodel::Ensemble ensemble{10, 150};
  const auto schedule = sched::knapsack_grouping(cluster, ensemble);
  const auto months = uniform_months(ensemble);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::make_eval_key(cluster, schedule, months));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvalKeyBuild);

void BM_CacheLookupHit(benchmark::State& state) {
  sim::EvalCache cache(1 << 16);
  const auto cluster = reference_cluster();
  const appmodel::Ensemble ensemble{10, 150};
  const auto key = sim::make_eval_key(
      cluster, sched::knapsack_grouping(cluster, ensemble),
      uniform_months(ensemble));
  cache.insert(key, 1234.5);
  for (auto _ : state) benchmark::DoNotOptimize(cache.lookup(key));
  state.counters["hit_rate"] = cache.stats().hit_rate();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheLookupMiss(benchmark::State& state) {
  sim::EvalCache cache(1 << 16);
  const auto cluster = reference_cluster();
  const appmodel::Ensemble ensemble{10, 150};
  sim::EvalKey key = sim::make_eval_key(
      cluster, sched::knapsack_grouping(cluster, ensemble),
      uniform_months(ensemble));
  std::uint64_t salt = 0;
  for (auto _ : state) {
    key.seed = ++salt;  // every probe unique -> guaranteed miss
    benchmark::DoNotOptimize(cache.lookup(key));
  }
  state.counters["hit_rate"] = cache.stats().hit_rate();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheLookupMiss);

void BM_CacheInsertEvict(benchmark::State& state) {
  // Capacity of one entry per shard: almost every insert evicts, measuring
  // the worst-case write path.
  sim::EvalCache cache(sim::EvalCache::kShardCount);
  const auto cluster = reference_cluster();
  const appmodel::Ensemble ensemble{10, 150};
  sim::EvalKey key = sim::make_eval_key(
      cluster, sched::knapsack_grouping(cluster, ensemble),
      uniform_months(ensemble));
  std::uint64_t salt = 0;
  for (auto _ : state) {
    key.seed = ++salt;
    cache.insert(key, static_cast<Seconds>(salt));
  }
  const auto stats = cache.stats();
  state.counters["evictions"] =
      static_cast<double>(stats.evictions) /
      static_cast<double>(state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheInsertEvict);

void BM_CachedMakespanWarm(benchmark::State& state) {
  const auto cluster = reference_cluster();
  const appmodel::Ensemble ensemble{10, state.range(0)};
  const auto schedule = sched::knapsack_grouping(cluster, ensemble);
  const auto before = sim::eval_cache().stats();
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::cached_makespan(cluster, schedule, ensemble));
  const auto after = sim::eval_cache().stats();
  const double hits = static_cast<double>(after.hits - before.hits);
  const double misses = static_cast<double>(after.misses - before.misses);
  state.counters["hit_rate"] =
      hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CachedMakespanWarm)->Arg(150)->Arg(1800);

void BM_LocalSearchWarmCache(benchmark::State& state) {
  const auto cluster = reference_cluster();
  const appmodel::Ensemble ensemble{10, 150};
  // Warm-up pass outside the timing loop so every timed iteration runs
  // against a fully populated cache, even when min_time admits only one.
  benchmark::DoNotOptimize(sim::local_search_grouping(cluster, ensemble));
  const auto before = sim::eval_cache().stats();
  std::size_t evaluations = 0;
  for (auto _ : state) {
    const auto result = sim::local_search_grouping(cluster, ensemble);
    evaluations = result.evaluations;
    benchmark::DoNotOptimize(result.makespan);
  }
  const auto after = sim::eval_cache().stats();
  const double hits = static_cast<double>(after.hits - before.hits);
  const double misses = static_cast<double>(after.misses - before.misses);
  state.counters["hit_rate"] =
      hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  state.counters["evaluations"] = static_cast<double>(evaluations);
}
BENCHMARK(BM_LocalSearchWarmCache);

}  // namespace

int main(int argc, char** argv) {
  const std::string json = oagrid::bench::extract_bench_json(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  oagrid::bench::run_benchmarks(json);
  benchmark::Shutdown();
  return 0;
}
