/// \file bench_baselines.cpp
/// \brief The §3 related-work comparison the paper argues qualitatively:
/// single-DAG mixed-parallelism schedulers (CPA, CPR, minimal-allotment list
/// scheduling) and the per-scenario pipeline split, all against the paper's
/// knapsack grouping, on the merged ensemble DAG.

#include <iostream>

#include "appmodel/tasks.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sched/baselines.hpp"
#include "sched/heuristics.hpp"
#include "sched/pipeline_dp.hpp"
#include "sim/ensemble_sim.hpp"

namespace {

using namespace oagrid;

/// Merged DAG: `scenarios` independent fused chains side by side.
dag::Dag merged_ensemble(Count scenarios, Count months) {
  dag::Dag merged;
  for (Count s = 0; s < scenarios; ++s) {
    dag::NodeId prev = dag::kInvalidNode;
    for (Count m = 0; m < months; ++m) {
      dag::TaskSpec main;
      main.name = "main";
      main.shape = dag::TaskShape::kMoldable;
      main.ref_duration = 1262;
      main.min_procs = kMinGroupSize;
      main.max_procs = kMaxGroupSize;
      const dag::NodeId v = merged.add_task(main);
      dag::TaskSpec post;
      post.name = "post";
      post.ref_duration = 180;
      const dag::NodeId w = merged.add_task(post);
      merged.add_edge(v, w);
      if (prev != dag::kInvalidNode) merged.add_edge(prev, v);
      prev = v;
    }
  }
  merged.freeze();
  return merged;
}

}  // namespace

int main() {
  bench::banner("Related-work baselines (paper §3)",
                "CPA / CPR / min-allotment list / pipeline split vs knapsack "
                "grouping; NS = 6, NM = 8 (merged DAG)");

  const Count ns = 6, nm = 8;
  const appmodel::Ensemble ensemble{ns, nm};
  const dag::Dag merged = merged_ensemble(ns, nm);

  TableWriter table({"R", "knapsack [s]", "CPA [s]", "CPR [s]",
                     "min-allot list [s]", "pipeline split [s]",
                     "knapsack vs best baseline %"});

  for (const ProcCount r : {22, 33, 44, 55, 66}) {
    const auto cluster = platform::make_builtin_cluster(1, r);
    const sched::MoldableDuration duration =
        sched::cluster_duration(merged, cluster);

    const Seconds knap =
        sim::simulate_with_heuristic(cluster, sched::Heuristic::kKnapsack,
                                     ensemble)
            .makespan;
    const Seconds cpa = sched::cpa_schedule(merged, r, duration).schedule.makespan;
    const Seconds cpr =
        sched::cpr_schedule(merged, r, duration, 60).schedule.makespan;
    const Seconds minimal =
        sched::minimal_schedule(merged, r, duration).schedule.makespan;

    // Pipeline baseline: each scenario is a 2-stage pipeline over its months.
    std::vector<sched::PipelineStage> stages(2);
    stages[0].name = "main";
    stages[0].time = [&cluster](ProcCount p) { return cluster.main_time(p); };
    stages[0].min_procs = cluster.min_group();
    stages[0].max_procs = cluster.max_group();
    stages[1].name = "post";
    stages[1].time = [&cluster](ProcCount) { return cluster.post_time(); };
    stages[1].min_procs = 1;
    stages[1].max_procs = 1;
    const Seconds pipeline =
        sched::pipeline_ensemble_makespan(stages, r, ns, nm);

    const Seconds best_baseline = std::min({cpa, cpr, minimal, pipeline});
    table.add_row({std::to_string(r), fmt(knap, 0), fmt(cpa, 0), fmt(cpr, 0),
                   fmt(minimal, 0),
                   pipeline == kInfiniteTime ? "infeasible" : fmt(pipeline, 0),
                   fmt(bench::gain_percent(best_baseline, knap), 2)});
  }
  table.print(std::cout);
  std::cout
      << "\nReading: the ensemble has NS critical paths; CPA/CPR optimize one "
         "and leave width on the table, and the rigid per-scenario pipeline "
         "split cannot share processors across scenarios. The paper's "
         "group-based knapsack scheme exploits both structures.\n";
  return 0;
}
