/// \file bench_sim_engine.cpp
/// \brief Throughput microbenchmarks of the discrete-event core and the
/// ensemble simulator (events/second, full-campaign latency), sizing the
/// sweeps the figure benches can afford.
///
/// The custom main() additionally gates the observability overhead: the
/// same campaign is simulated with obs off and obs on (metrics recording),
/// interleaved to cancel frequency drift, and the binary fails (exit 1) if
/// the median instrumented run is more than 5% slower.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "obs/obs.hpp"
#include "platform/profiles.hpp"
#include "sim/engine.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/grid_sim.hpp"

namespace {

using namespace oagrid;

void BM_EngineEventThroughput(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::size_t fired = 0;
    // Self-rescheduling chain exercises push/pop on a warm queue.
    std::function<void()> tick = [&] {
      if (++fired < events) engine.schedule_after(1.0, tick);
    };
    engine.schedule_at(0.0, tick);
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(100000);

void BM_EngineFanOut(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    for (std::size_t i = 0; i < events; ++i)
      engine.schedule_at(static_cast<double>(i % 97), [] {});
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EngineFanOut)->Arg(100000);

void BM_EnsembleSimulation(benchmark::State& state) {
  const auto cluster = platform::make_builtin_cluster(1, 53);
  const appmodel::Ensemble ensemble{10, state.range(0)};
  const auto schedule = sched::knapsack_grouping(cluster, ensemble);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_ensemble(cluster, schedule, ensemble));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          ensemble.total_tasks() * 2);
}
BENCHMARK(BM_EnsembleSimulation)->Arg(150)->Arg(1800);

void BM_GridCampaign(benchmark::State& state) {
  const auto grid = platform::make_builtin_grid(40);
  const appmodel::Ensemble ensemble{10, state.range(0)};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_grid(grid, ensemble, sched::Heuristic::kKnapsack));
}
BENCHMARK(BM_GridCampaign)->Arg(60);

/// One full campaign simulation; the workload of the overhead gate.
double timed_campaign_us(const platform::Cluster& cluster,
                         const sched::GroupSchedule& schedule,
                         const appmodel::Ensemble& ensemble) {
  const auto start = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sim::simulate_ensemble(cluster, schedule, ensemble));
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Measures obs-off vs obs-on (metrics) vs obs-on (metrics + trace) on the
/// paper's reference campaign. Returns false if metrics overhead > 5%.
bool check_obs_overhead() {
  const auto cluster = platform::make_builtin_cluster(1, 53);
  const appmodel::Ensemble ensemble{10, 150};
  const auto schedule = sched::knapsack_grouping(cluster, ensemble);
  constexpr int kRounds = 21;

  // Warm-up: page in code and the allocator.
  obs::set_enabled(false);
  (void)timed_campaign_us(cluster, schedule, ensemble);

  std::vector<double> off_us, metrics_us, trace_us;
  sim::SimOptions traced;
  traced.obs_trace = &obs::trace_buffer();
  traced.obs_label = cluster.name();
  for (int round = 0; round < kRounds; ++round) {
    // Interleaved A/B/A so clock drift and cache state hit both sides alike.
    obs::set_enabled(false);
    off_us.push_back(timed_campaign_us(cluster, schedule, ensemble));
    obs::set_enabled(true);
    metrics_us.push_back(timed_campaign_us(cluster, schedule, ensemble));
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        sim::simulate_ensemble(cluster, schedule, ensemble, traced));
    trace_us.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count());
    obs::reset();
  }
  obs::set_enabled(false);
  obs::reset();

  const double off = median(off_us);
  const double with_metrics = median(metrics_us);
  const double with_trace = median(trace_us);
  const double metrics_overhead = (with_metrics - off) / off * 100.0;
  const double trace_overhead = (with_trace - off) / off * 100.0;
  std::printf("\nobservability overhead (median of %d campaigns, NS=10 NM=150, "
              "53 procs)\n",
              kRounds);
  std::printf("  obs off:             %10.1f us\n", off);
  std::printf("  obs on (metrics):    %10.1f us  (%+.2f%%)\n", with_metrics,
              metrics_overhead);
  std::printf("  obs on (+trace):     %10.1f us  (%+.2f%%, informational)\n",
              with_trace, trace_overhead);
  if (metrics_overhead > 5.0) {
    std::printf("FAIL: metrics overhead %.2f%% exceeds the 5%% budget\n",
                metrics_overhead);
    return false;
  }
  std::printf("OK: metrics overhead within the 5%% budget\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json = oagrid::bench::extract_bench_json(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  oagrid::bench::run_benchmarks(json);
  benchmark::Shutdown();
  return check_obs_overhead() ? 0 : 1;
}
