/// \file bench_sim_engine.cpp
/// \brief Throughput microbenchmarks of the discrete-event core and the
/// ensemble simulator (events/second, full-campaign latency), sizing the
/// sweeps the figure benches can afford.

#include <benchmark/benchmark.h>

#include "platform/profiles.hpp"
#include "sim/engine.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/grid_sim.hpp"

namespace {

using namespace oagrid;

void BM_EngineEventThroughput(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::size_t fired = 0;
    // Self-rescheduling chain exercises push/pop on a warm queue.
    std::function<void()> tick = [&] {
      if (++fired < events) engine.schedule_after(1.0, tick);
    };
    engine.schedule_at(0.0, tick);
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(100000);

void BM_EngineFanOut(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    for (std::size_t i = 0; i < events; ++i)
      engine.schedule_at(static_cast<double>(i % 97), [] {});
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EngineFanOut)->Arg(100000);

void BM_EnsembleSimulation(benchmark::State& state) {
  const auto cluster = platform::make_builtin_cluster(1, 53);
  const appmodel::Ensemble ensemble{10, state.range(0)};
  const auto schedule = sched::knapsack_grouping(cluster, ensemble);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_ensemble(cluster, schedule, ensemble));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          ensemble.total_tasks() * 2);
}
BENCHMARK(BM_EnsembleSimulation)->Arg(150)->Arg(1800);

void BM_GridCampaign(benchmark::State& state) {
  const auto grid = platform::make_builtin_grid(40);
  const appmodel::Ensemble ensemble{10, state.range(0)};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_grid(grid, ensemble, sched::Heuristic::kKnapsack));
}
BENCHMARK(BM_GridCampaign)->Arg(60);

}  // namespace

BENCHMARK_MAIN();
