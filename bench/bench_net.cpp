/// \file bench_net.cpp
/// \brief Microbenchmarks of the net subsystem: link-table lookups, the
/// fair-share transfer allocator at campaign scale, network-file parsing,
/// and the cost of pricing Algorithm 1's placements over a network. These
/// guard the hot paths the network-aware schedulers hit once per candidate
/// placement, so they must stay cheap relative to a simulation evaluation.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/fairshare.hpp"
#include "net/network.hpp"
#include "net/parser.hpp"
#include "sched/repartition.hpp"

namespace {

using namespace oagrid;

constexpr int kClusters = 8;

/// Campaign-shaped batch: `per_cluster` restart files staged from home to
/// each remote cluster at t = 0 — the deployment burst of §5.
std::vector<net::TransferRequest> staging_batch(int clusters,
                                                int per_cluster) {
  std::vector<net::TransferRequest> reqs;
  for (ClusterId c = 1; c < clusters; ++c)
    for (int i = 0; i < per_cluster; ++i)
      reqs.push_back({0, c, 120.0, 0.0});
  return reqs;
}

void BM_TransferTimeLookup(benchmark::State& state) {
  const auto model = net::renater_network(kClusters);
  ClusterId src = 0;
  for (auto _ : state) {
    src = (src + 1) % kClusters;
    benchmark::DoNotOptimize(
        model.transfer_time(src, (src + 3) % kClusters, 120.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TransferTimeLookup);

void BM_FairShareStagingBatch(benchmark::State& state) {
  // The allocator's common case: a deployment burst over distinct links
  // (one per destination), sized like a real campaign.
  const auto model = net::renater_network(kClusters);
  const auto reqs =
      staging_batch(kClusters, static_cast<int>(state.range(0)));
  net::TransferPlan plan;
  for (auto _ : state)
    benchmark::DoNotOptimize(plan = net::simulate_transfers(model, reqs));
  state.counters["transfers"] = static_cast<double>(reqs.size());
  state.counters["makespan_s"] = plan.makespan;
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(reqs.size()));
}
BENCHMARK(BM_FairShareStagingBatch)->Arg(4)->Arg(32);

void BM_FairShareContendedLink(benchmark::State& state) {
  // Worst case: every transfer fights for one directed link with staggered
  // arrivals, so each event rescales every share (O(E * A) path).
  const auto model = net::renater_network(2);
  std::vector<net::TransferRequest> reqs;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i)
    reqs.push_back({0, 1, 40.0 + static_cast<double>(i % 7),
                    0.25 * static_cast<double>(i)});
  net::TransferPlan plan;
  for (auto _ : state)
    benchmark::DoNotOptimize(plan = net::simulate_transfers(model, reqs));
  state.counters["makespan_s"] = plan.makespan;
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(reqs.size()));
}
BENCHMARK(BM_FairShareContendedLink)->Arg(16)->Arg(128);

void BM_ParseNetworkFile(benchmark::State& state) {
  std::ostringstream text;
  net::write_network(text, net::renater_network(kClusters));
  const std::string file = text.str();
  for (auto _ : state)
    benchmark::DoNotOptimize(net::parse_network_string(file));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseNetworkFile);

void BM_ChargedRepartition(benchmark::State& state) {
  // Algorithm 1 with each candidate placement priced over the network —
  // the per-campaign scheduling cost of network awareness.
  const auto model = net::renater_network(kClusters);
  const Count scenarios = 32;
  std::vector<sched::PerformanceVector> perf(kClusters);
  for (int c = 0; c < kClusters; ++c)
    for (Count k = 1; k <= scenarios; ++k)
      perf[static_cast<std::size_t>(c)].push_back(
          (3600.0 + 400.0 * c) * static_cast<double>(k));
  const sched::PlacementCharge charge = [&model](std::size_t cluster,
                                                 Count k) {
    const auto dst = static_cast<ClusterId>(cluster);
    const double files = static_cast<double>(k);
    return model.transfer_time(0, dst, files * 120.0) +
           model.transfer_time(dst, 0, files * 184.0);
  };
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::greedy_repartition_charged(perf, scenarios, charge));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChargedRepartition);

}  // namespace

int main(int argc, char** argv) {
  const std::string json = oagrid::bench::extract_bench_json(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  oagrid::bench::run_benchmarks(json);
  benchmark::Shutdown();
  return 0;
}
