/// \file bench_ablation_dispatch.cpp
/// \brief Ablation: the §4.3 dispatch rule. The paper schedules "the month
/// of the less advanced simulation" on each freed group; this bench compares
/// that rule against round-robin and FIFO on heterogeneous (knapsack)
/// groupings, where the rule choice can actually matter.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"

int main() {
  using namespace oagrid;
  bench::banner("Ablation: group dispatch rule (paper §4.3)",
                "least-advanced vs round-robin vs FIFO on knapsack groupings");

  const appmodel::Ensemble ensemble{10, 150};
  TableWriter table({"R", "grouping", "least-adv [s]", "round-robin [s]",
                     "fifo [s]", "max delta %"});

  for (ProcCount r = 17; r <= 120; r += 9) {
    const auto cluster = platform::make_builtin_cluster(1, r);
    const auto schedule = sched::knapsack_grouping(cluster, ensemble);
    Seconds ms[3];
    int i = 0;
    for (const auto rule :
         {sim::DispatchRule::kLeastAdvanced, sim::DispatchRule::kRoundRobin,
          sim::DispatchRule::kFifo}) {
      sim::SimOptions options;
      options.dispatch = rule;
      ms[i++] =
          sim::simulate_ensemble(cluster, schedule, ensemble, options).makespan;
    }
    const Seconds best = std::min({ms[0], ms[1], ms[2]});
    const Seconds worst = std::max({ms[0], ms[1], ms[2]});
    table.add_row({std::to_string(r), schedule.describe(), fmt(ms[0], 0),
                   fmt(ms[1], 0), fmt(ms[2], 0),
                   fmt(100.0 * (worst - best) / best, 3)});
  }
  table.print(std::cout);
  std::cout << "\nReading: the rules differ by well under a percent — the "
               "grouping decision, not the dispatch order, carries the gains; "
               "least-advanced additionally guarantees ensemble fairness "
               "(balanced progress), which is why the paper uses it.\n";
  return 0;
}
