/// \file bench_robustness.cpp
/// \brief Do the gains survive reality? The paper's durations are clean
/// benchmark numbers; real Grid'5000 runs see noise and failures. This bench
/// re-runs the Figure 8 comparison under duration jitter and task failures
/// (mean +- stddev over seeds) to check the knapsack advantage is not an
/// artifact of determinism.

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sim/ensemble_sim.hpp"

int main() {
  using namespace oagrid;
  bench::banner("Robustness under noise and failures (extension)",
                "Knapsack gain vs basic across perturbation levels; NS = 10, "
                "NM = 60, 10 seeds");

  const appmodel::Ensemble ensemble{10, 60};
  struct Level {
    const char* name;
    double jitter;
    double failures;
  };
  const Level levels[] = {
      {"clean", 0.0, 0.0},       {"5% jitter", 0.05, 0.0},
      {"15% jitter", 0.15, 0.0}, {"2% failures", 0.0, 0.02},
      {"jitter+failures", 0.10, 0.05},
  };

  for (const ProcCount r : {22, 34, 53}) {
    const auto cluster = platform::make_builtin_cluster(1, r);
    const auto basic = sched::basic_grouping(cluster, ensemble);
    const auto knap = sched::knapsack_grouping(cluster, ensemble);

    std::cout << "R = " << r << " (basic " << basic.describe() << " vs knapsack "
              << knap.describe() << "):\n";
    TableWriter table({"perturbation", "basic mean [s]", "knap mean [s]",
                       "gain % mean", "gain % stddev", "mean retries"});
    for (const Level& level : levels) {
      RunningStats basic_ms, knap_ms, gains, retries;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        sim::SimOptions options;
        options.perturbation.duration_jitter = level.jitter;
        options.perturbation.failure_probability = level.failures;
        options.perturbation.seed = seed;
        const auto b = sim::simulate_ensemble(cluster, basic, ensemble, options);
        const auto k = sim::simulate_ensemble(cluster, knap, ensemble, options);
        basic_ms.add(b.makespan);
        knap_ms.add(k.makespan);
        gains.add(bench::gain_percent(b.makespan, k.makespan));
        retries.add(static_cast<double>(b.retries + k.retries) / 2.0);
        if (level.jitter == 0.0 && level.failures == 0.0) break;  // determin.
      }
      table.add_row({level.name, fmt(basic_ms.mean(), 0), fmt(knap_ms.mean(), 0),
                     fmt(gains.mean(), 2), fmt(gains.stddev(), 2),
                     fmt(retries.mean(), 1)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading: the grouping advantage is a structural property of "
               "the partition, not of exact task durations — it persists "
               "within noise of the same order as the perturbation.\n";
  return 0;
}
