/// \file bench_robustness.cpp
/// \brief Do the gains survive reality? The paper's durations are clean
/// benchmark numbers; real Grid'5000 runs see noise and lose nodes. This
/// bench re-runs the Figure 8 comparison under duration jitter and
/// fault::FailureModel outages (mean +- stddev over seeds) to check the
/// knapsack advantage is not an artifact of determinism — failure injection
/// goes through the same seedable availability model the simulators and the
/// CLI consume, not an ad-hoc per-task coin flip.
///
/// The narrative table prints first; the registered google-benchmark
/// microbenchmarks (timing one perturbed heuristic comparison) run after it
/// and honour --bench-json for machine-readable output.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "fault/failure.hpp"
#include "platform/profiles.hpp"
#include "sim/ensemble_sim.hpp"

namespace {

using namespace oagrid;

const appmodel::Ensemble kEnsemble{10, 60};

struct Level {
  const char* name;
  double jitter;  ///< duration noise (stddev of ln factor)
  double mtbf;    ///< exponential node MTBF [s], 0 = no failures
  double mttr;    ///< mean repair [s]
};

constexpr Level kLevels[] = {
    {"clean", 0.0, 0.0, 0.0},
    {"5% jitter", 0.05, 0.0, 0.0},
    {"15% jitter", 0.15, 0.0, 0.0},
    {"mtbf 8h", 0.0, 8.0 * 3600.0, 900.0},
    {"jitter + mtbf 4h", 0.10, 4.0 * 3600.0, 900.0},
};

/// One perturbed evaluation: jitter via SimOptions.perturbation, failures
/// via a seeded FailureModel on the (single) cluster.
sim::SimResult evaluate(const platform::Cluster& cluster,
                        const sched::GroupSchedule& schedule,
                        const Level& level, std::uint64_t seed) {
  fault::FailureModel model;
  sim::SimOptions options;
  options.perturbation.duration_jitter = level.jitter;
  options.perturbation.seed = seed;
  if (level.mtbf > 0.0) {
    model =
        fault::FailureModel::uniform_exponential(1, level.mtbf, level.mttr,
                                                 seed);
    options.fault.model = &model;
  }
  return sim::simulate_ensemble(cluster, schedule, kEnsemble, options);
}

void print_tables() {
  bench::banner("Robustness under noise and failures (extension)",
                "Knapsack gain vs basic across perturbation levels; NS = 10, "
                "NM = 60, 10 seeds");
  for (const ProcCount r : {22, 34, 53}) {
    const auto cluster = platform::make_builtin_cluster(1, r);
    const auto basic = sched::basic_grouping(cluster, kEnsemble);
    const auto knap = sched::knapsack_grouping(cluster, kEnsemble);

    std::cout << "R = " << r << " (basic " << basic.describe()
              << " vs knapsack " << knap.describe() << "):\n";
    TableWriter table({"perturbation", "basic mean [s]", "knap mean [s]",
                       "gain % mean", "gain % stddev", "mean kills"});
    for (const Level& level : kLevels) {
      RunningStats basic_ms, knap_ms, gains, kills;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto b = evaluate(cluster, basic, level, seed);
        const auto k = evaluate(cluster, knap, level, seed);
        basic_ms.add(b.makespan);
        knap_ms.add(k.makespan);
        gains.add(bench::gain_percent(b.makespan, k.makespan));
        kills.add(static_cast<double>(b.fault.kills + k.fault.kills) / 2.0);
        if (level.jitter == 0.0 && level.mtbf == 0.0) break;  // determin.
      }
      table.add_row({level.name, fmt(basic_ms.mean(), 0),
                     fmt(knap_ms.mean(), 0), fmt(gains.mean(), 2),
                     fmt(gains.stddev(), 2), fmt(kills.mean(), 1)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading: the grouping advantage is a structural property of "
               "the partition, not of exact task durations — it persists "
               "within noise of the same order as the perturbation, and "
               "node failures degrade both groupings together.\n\n";
}

/// Times one basic-vs-knapsack comparison under the indexed perturbation
/// level, cycling seeds so repeated iterations see fresh draws.
void BM_PerturbedComparison(benchmark::State& state) {
  const Level& level = kLevels[static_cast<std::size_t>(state.range(0))];
  const auto cluster = platform::make_builtin_cluster(1, 34);
  const auto basic = sched::basic_grouping(cluster, kEnsemble);
  const auto knap = sched::knapsack_grouping(cluster, kEnsemble);
  std::uint64_t seed = 1;
  RunningStats gains;
  for (auto _ : state) {
    const auto b = evaluate(cluster, basic, level, seed);
    const auto k = evaluate(cluster, knap, level, seed);
    gains.add(bench::gain_percent(b.makespan, k.makespan));
    seed = seed % 10 + 1;
  }
  state.SetLabel(level.name);
  state.counters["gain_pct"] = gains.mean();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_PerturbedComparison)->DenseRange(0, 4);

}  // namespace

int main(int argc, char** argv) {
  const std::string json = oagrid::bench::extract_bench_json(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  print_tables();
  oagrid::bench::run_benchmarks(json);
  benchmark::Shutdown();
  return 0;
}
