/// \file bench_fig3_6_schedules.cpp
/// \brief Regenerates the schedule *shapes* of the paper's Figures 3-6 as
/// ASCII Gantt charts, one per formula regime, and checks each regime
/// actually occurs (the closed form agrees with the discrete-event trace).

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "platform/cluster.hpp"
#include "sched/makespan_model.hpp"
#include "sim/ensemble_sim.hpp"

namespace {

using namespace oagrid;

void show_case(const char* figure, const char* description,
               const platform::Cluster& cluster, const appmodel::Ensemble& e,
               ProcCount g, sched::MakespanRegime expected) {
  const auto analytic = sched::evaluate_uniform_grouping(cluster, e, g);
  sched::GroupSchedule schedule;
  schedule.group_sizes.assign(static_cast<std::size_t>(analytic.nbmax), g);
  schedule.post_pool = analytic.r2;
  sim::SimOptions options;
  options.capture_trace = true;
  const sim::SimResult result =
      sim::simulate_ensemble(cluster, schedule, e, options);

  std::cout << figure << " — " << description << "\n";
  std::cout << "  R=" << cluster.resources() << " G=" << g
            << " NS=" << e.scenarios << " NM=" << e.months << " -> regime "
            << to_string(analytic.regime) << "\n";
  std::cout << "  closed form " << fmt(analytic.makespan, 1)
            << " s, simulated " << fmt(result.makespan, 1) << " s ("
            << (std::abs(analytic.makespan - result.makespan) < 1e-6
                    ? "exact match"
                    : "bounded difference")
            << ")\n";
  if (analytic.regime != expected)
    std::cout << "  WARNING: expected regime " << to_string(expected) << "\n";
  std::cout << result.trace.render_gantt(96) << "\n";
}

}  // namespace

int main() {
  bench::banner("Figures 3-6 (schedule shapes)",
                "ASCII Gantt of each post-processing regime; closed form vs DES");

  // TG multiples of TP so the formulas are exact and the charts clean.
  const platform::Cluster no_pool("no-pool", 8, 4,
                                  {120, 110, 100, 90, 80, 70, 60, 50}, 10.0);
  show_case("Figure 3", "R2 = 0: posts wait for the end (Equation 2)", no_pool,
            appmodel::Ensemble{2, 4}, 4, sched::MakespanRegime::kNoPoolExact);

  const platform::Cluster tight_pool("tight-pool", 9, 4,
                                     {120, 110, 100, 90, 80, 70, 60, 50}, 60.0);
  show_case("Figures 4-5", "pool too small: posts overpass the sets (Eq 4)",
            tight_pool, appmodel::Ensemble{2, 4}, 4,
            sched::MakespanRegime::kPoolExact);

  show_case("Figure 6", "overpass + incomplete last set (Equation 5)",
            tight_pool, appmodel::Ensemble{3, 3}, 4,
            sched::MakespanRegime::kPoolPartial);

  const platform::Cluster wide_pool("wide-pool", 13, 4,
                                    {120, 110, 100, 90, 80, 70, 60, 50}, 10.0);
  show_case("steady state", "pool keeps up: posts hidden inside the sets (Eq 4)",
            wide_pool, appmodel::Ensemble{2, 5}, 4,
            sched::MakespanRegime::kPoolExact);
  return 0;
}
