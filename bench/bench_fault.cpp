/// \file bench_fault.cpp
/// \brief Microbenchmarks of the fault subsystem: outage-stream draws, the
/// fluid availability tracker, failure-file parsing, the failure-aware
/// placement charge, and a failure-injected DES run. The streams and the
/// charge sit on paths the schedulers and simulators hit once per unit or
/// per candidate placement, so they must stay cheap relative to an
/// evaluation; the DES run guards the cost of the kill/rewind machinery
/// itself.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/checkpoint.hpp"
#include "fault/failure.hpp"
#include "fault/parser.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sched/repartition.hpp"
#include "sim/ensemble_sim.hpp"

namespace {

using namespace oagrid;

constexpr int kClusters = 8;

fault::FailureModel mixed_model() {
  fault::FailureModel model(kClusters);
  for (ClusterId c = 0; c < kClusters; ++c) {
    if (c % 3 == 0)
      model.set_weibull(c, 0.7, 40000.0 + 5000.0 * c, 2000.0);
    else
      model.set_exponential(c, 40000.0 + 5000.0 * c, 2000.0);
    model.add_outage(c, 10000.0 * (c + 1), 1800.0);
  }
  return model;
}

void BM_OutageStreamDraw(benchmark::State& state) {
  // One stream draw ~ one kNodeDown event scheduled in the DES.
  const fault::FailureModel model = mixed_model();
  int unit = 0;
  for (auto _ : state) {
    fault::OutageStream stream(model, static_cast<ClusterId>(unit % kClusters),
                               unit);
    ++unit;
    Seconds t = 0.0;
    for (int i = 0; i < 64; ++i) {
      const auto outage = stream.next(t);
      if (!outage) break;
      benchmark::DoNotOptimize(outage->start);
      t = outage->start + outage->duration;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_OutageStreamDraw);

void BM_AvailabilityTracker(benchmark::State& state) {
  // The fluid grid's per-epoch query: down fraction of consecutive windows.
  const fault::FailureModel model = mixed_model();
  int unit = 0;
  for (auto _ : state) {
    fault::AvailabilityTracker tracker(
        model, static_cast<ClusterId>(unit % kClusters), unit);
    ++unit;
    double total = 0.0;
    for (int epoch = 0; epoch < 64; ++epoch)
      total += tracker.down_fraction(21600.0 * epoch, 21600.0 * (epoch + 1));
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_AvailabilityTracker);

void BM_ParseFailureFile(benchmark::State& state) {
  std::ostringstream text;
  fault::write_failures(text, mixed_model());
  const std::string file = text.str();
  for (auto _ : state)
    benchmark::DoNotOptimize(fault::parse_failures_string(file));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseFailureFile);

void BM_FailureChargedRepartition(benchmark::State& state) {
  // Algorithm 1 with every candidate placement charged its expected failure
  // inflation — the scheduling-time cost of failure awareness.
  const fault::FailureModel model = mixed_model();
  const Count scenarios = 32;
  const Count months = 60;
  std::vector<sched::PerformanceVector> perf(kClusters);
  for (int c = 0; c < kClusters; ++c)
    for (Count k = 1; k <= scenarios; ++k)
      perf[static_cast<std::size_t>(c)].push_back(
          (3600.0 + 400.0 * c) * static_cast<double>(k));
  const sched::PlacementCharge charge =
      fault::make_failure_charge(model, perf, months, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::greedy_repartition_charged(perf, scenarios, charge));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FailureChargedRepartition);

void BM_FaultInjectedSim(benchmark::State& state) {
  // Full failure-injected DES of one cluster's campaign: outage scheduling,
  // in-flight kills, checkpoint rewinds and redispatch all included.
  const auto cluster = platform::make_builtin_cluster(1, 34);
  const appmodel::Ensemble ensemble{10, 60};
  const auto schedule =
      sched::make_schedule(sched::Heuristic::kKnapsack, cluster, ensemble);
  const fault::FailureModel model =
      fault::FailureModel::uniform_exponential(1, 30000.0, 1500.0, 7);
  sim::SimOptions options;
  options.fault.model = &model;
  options.fault.recovery = fault::RecoveryPolicy::kRescheduleInCluster;
  options.fault.checkpoint_months = 3;
  sim::SimResult result;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        result = sim::simulate_ensemble(cluster, schedule, ensemble, options));
  state.counters["outages"] = static_cast<double>(result.fault.outages);
  state.counters["kills"] = static_cast<double>(result.fault.kills);
  state.counters["rewound_months"] =
      static_cast<double>(result.fault.rewound_months);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultInjectedSim);

void BM_ZeroFailureGate(benchmark::State& state) {
  // The same campaign with fault injection compiled in but *inactive*: what
  // every pre-existing caller pays for the fault gate in the DES hot loop
  // (must track bench_sim_engine, not BM_FaultInjectedSim).
  const auto cluster = platform::make_builtin_cluster(1, 34);
  const appmodel::Ensemble ensemble{10, 60};
  const auto schedule =
      sched::make_schedule(sched::Heuristic::kKnapsack, cluster, ensemble);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_ensemble(cluster, schedule, ensemble));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZeroFailureGate);

}  // namespace

int main(int argc, char** argv) {
  const std::string json = oagrid::bench::extract_bench_json(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  oagrid::bench::run_benchmarks(json);
  benchmark::Shutdown();
  return 0;
}
