/// \file bench_fig7_grouping.cpp
/// \brief Regenerates Figure 7: the optimal uniform grouping G chosen by the
/// basic heuristic for 10 scenario simulations, as the number of resources
/// sweeps 11..120. The paper's plot is a sawtooth oscillating across the
/// [4, 11] band; the same structure must appear here.

#include <iostream>

#include "bench_util.hpp"
#include "common/ascii_chart.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sched/makespan_model.hpp"

int main() {
  using namespace oagrid;
  bench::banner("Figure 7 (optimal groupings for 10 scenario simulations)",
                "Best uniform G vs resources R in [11, 120], NS = 10");

  const appmodel::Ensemble ensemble{10, 150};
  ChartSeries series{"best G (reference cluster)", '*', {}, {}};
  TableWriter table({"R", "best G", "nbmax", "R2", "makespan [s]"});
  int direction_changes = 0, last_direction = 0;
  ProcCount prev = 0;
  for (ProcCount r = 11; r <= 120; ++r) {
    const auto cluster = platform::make_builtin_cluster(1, r);
    const auto choice = sched::best_uniform_grouping(cluster, ensemble);
    series.xs.push_back(r);
    series.ys.push_back(choice.group_size);
    if (r % 4 == 3 || r == 11 || r == 120)
      table.add_row({std::to_string(r), std::to_string(choice.group_size),
                     std::to_string(choice.estimate.nbmax),
                     std::to_string(choice.estimate.r2),
                     fmt(choice.estimate.makespan, 0)});
    if (prev != 0 && choice.group_size != prev) {
      const int direction = choice.group_size > prev ? 1 : -1;
      if (last_direction != 0 && direction != last_direction)
        ++direction_changes;
      last_direction = direction;
    }
    prev = choice.group_size;
  }
  table.print(std::cout);

  std::cout << "\nFigure 7 shape (y = best G, x = R):\n";
  AsciiChart chart(100, 16);
  chart.set_y_range(3.5, 11.5);
  chart.add_series(series);
  std::cout << chart.render();

  std::cout << "\nSawtooth direction changes across the sweep: "
            << direction_changes << " (paper's plot oscillates similarly)\n";
  return 0;
}
