/// \file bench_fig1_taskmodel.cpp
/// \brief Regenerates the paper's Figure 1/2 content: the monthly task chain
/// with benchmarked durations, the fused two-task model, and the §6
/// cluster-speed anchors (fastest T[11] = 1177 s, slowest = 1622 s).

#include <iostream>

#include "appmodel/ensemble.hpp"
#include "appmodel/month.hpp"
#include "appmodel/tasks.hpp"
#include "appmodel/volumes.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"

int main() {
  using namespace oagrid;
  bench::banner("Figure 1 (task durations) + Figure 2 (fused model) + §6 anchors",
                "Monthly simulation DAG, fusion soundness, cluster T[G] tables");

  // --- Figure 1: per-task durations -------------------------------------
  std::cout << "Figure 1 — tasks of one monthly simulation:\n";
  TableWriter tasks({"phase", "task", "long name", "duration [s]", "procs"});
  using appmodel::TaskKind;
  const struct {
    const char* phase;
    TaskKind kind;
    const char* procs;
  } rows[] = {
      {"pre", TaskKind::kConcatenateAtmosphericInputFiles, "1"},
      {"pre", TaskKind::kModifyParameters, "1"},
      {"main", TaskKind::kProcessCoupledRun, "4-11 (moldable)"},
      {"post", TaskKind::kConvertOutputFormat, "1"},
      {"post", TaskKind::kExtractMinimumInformation, "1"},
      {"post", TaskKind::kCompressDiags, "1"},
  };
  for (const auto& row : rows)
    tasks.add_row({row.phase, std::string(appmodel::short_name(row.kind)),
                   std::string(appmodel::long_name(row.kind)),
                   fmt(appmodel::reference_duration(row.kind), 0), row.procs});
  tasks.print(std::cout);
  std::cout << "Inter-month restart volume: " << appmodel::kInterMonthDataMb
            << " MB (paper §2)\n\n";

  // --- Figure 2: fused model ---------------------------------------------
  std::cout << "Figure 2 — fused model: main ("
            << appmodel::reference_duration(TaskKind::kFusedMain)
            << " s) -> post ("
            << appmodel::reference_duration(TaskKind::kFusedPost) << " s)\n";
  const Seconds cp = appmodel::fused_model_critical_path_check(24);
  std::cout << "Fusion soundness check over a 24-month chain: OK "
            << "(critical path " << fmt(cp, 0) << " s = 24 x 1262 + 180)\n\n";

  // --- Chain structure ----------------------------------------------------
  const auto detailed = appmodel::make_detailed_scenario(12);
  const auto fused = appmodel::make_fused_scenario(12);
  std::cout << "One year of one scenario: detailed DAG "
            << detailed.graph.node_count() << " nodes / "
            << detailed.graph.edge_count() << " edges; fused DAG "
            << fused.graph.node_count() << " nodes / "
            << fused.graph.edge_count() << " edges\n\n";

  // --- §6 cluster anchors ---------------------------------------------------
  std::cout << "Grid'5000-like cluster profiles (synthesized; §6 anchors "
               "1177 s / 1622 s at G = 11):\n";
  TableWriter clusters({"cluster", "T[4]", "T[5]", "T[6]", "T[7]", "T[8]",
                        "T[9]", "T[10]", "T[11]", "TP"});
  for (int i = 0; i < 5; ++i) {
    const auto c = platform::make_builtin_cluster(i, 64);
    std::vector<std::string> row{c.name()};
    for (ProcCount g = 4; g <= 11; ++g) row.push_back(fmt(c.main_time(g), 0));
    row.push_back(fmt(c.post_time(), 0));
    clusters.add_row(row);
  }
  clusters.print(std::cout);
  std::cout << "\nPaper benchmark pcr ~ 1260 s: reference cluster T[11] = "
            << fmt(platform::make_builtin_cluster(1, 64).main_time(11), 1)
            << " s\n";

  // --- §2 data volumes at campaign scale ------------------------------------
  const auto volumes =
      appmodel::campaign_volumes(appmodel::Ensemble::paper_full());
  std::cout << "\nFull campaign (10 scenarios x 150 years) data volumes:\n"
            << "  restart hand-offs: " << fmt(volumes.restart_transfer_mb / 1024, 1)
            << " GB (120 MB x 10 x 1799, paper §2)\n"
            << "  diagnostics raw:   " << fmt(volumes.raw_diag_mb / 1024, 1)
            << " GB, compressed " << fmt(volumes.compressed_diag_mb / 1024, 1)
            << " GB — why compress_diags exists\n";
  return 0;
}
