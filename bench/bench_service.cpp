/// \file bench_service.cpp
/// \brief The campaign service as a consolidation study: several tenants'
/// campaigns (the paper's "around ten scenarios of 150 years" per
/// climatologist, scaled down) share one grid through the service's
/// admission queue and elastic leases, instead of each waiting for a
/// dedicated reservation. Compares the queue policies on wait/makespan/
/// stretch, then prices the crash-recovery machinery: journal records,
/// snapshots, and verified-replay recovery time, all straight from the obs
/// metrics the service emits.
///
/// The narrative tables print first; the registered google-benchmark
/// microbenchmarks (full shared run, journal recovery, failure-aware
/// estimation) run after them and honour --bench-json.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "fault/failure.hpp"
#include "obs/obs.hpp"
#include "platform/profiles.hpp"
#include "service/service.hpp"

using namespace oagrid;
using service::CampaignService;
using service::CampaignSpec;
using service::ServiceOptions;

namespace {

struct Tenant {
  CampaignSpec spec;
  Seconds at = 0.0;
};

std::vector<Tenant> tenants() {
  const auto spec = [](const std::string& owner, double weight, Count ns,
                       Count nm) {
    CampaignSpec s;
    s.owner = owner;
    s.weight = weight;
    s.scenarios = ns;
    s.months = nm;
    return s;
  };
  return {{spec("alice", 1.0, 10, 24), 0.0},
          {spec("bob", 2.0, 8, 24), 0.0},
          {spec("carol", 1.0, 6, 18), 3600.0},
          {spec("alice", 1.0, 4, 30), 7200.0},
          {spec("dave", 1.0, 8, 12), 10800.0},
          {spec("bob", 2.0, 5, 20), 14400.0}};
}

platform::Grid bench_grid() { return platform::make_builtin_grid(25).prefix(3); }

std::unique_ptr<CampaignService> run_all(ServiceOptions options) {
  auto svc = std::make_unique<CampaignService>(bench_grid(), options);
  for (const Tenant& t : tenants()) (void)svc->submit(t.spec, t.at);
  if (!svc->run()) throw std::runtime_error("bench service was killed?");
  return svc;
}

/// Makespan of one campaign holding the whole grid alone (the dedicated-
/// reservation baseline every sharing run is stretched against).
std::vector<Seconds> alone_makespans() {
  std::vector<Seconds> result;
  for (const Tenant& t : tenants()) {
    CampaignService svc(bench_grid(), ServiceOptions{});
    const auto id = svc.submit(t.spec, 0.0);
    if (!svc.run()) throw std::runtime_error("bench service was killed?");
    result.push_back(svc.campaign(id).makespan());
  }
  return result;
}

void print_tables() {
  bench::banner(
      "Campaign service (multi-tenant sharing of the paper's grid)",
      "queue policies vs dedicated reservations; journal/recovery cost");

  const std::vector<Seconds> alone = alone_makespans();
  Seconds alone_serial = 0;
  for (const Seconds s : alone) alone_serial += s;
  std::cout << "workload: " << tenants().size()
            << " campaigns, 4 owners, 3 clusters x 25 procs; run serially "
               "on dedicated reservations they need "
            << fmt_duration(alone_serial) << "\n\n";

  TableWriter table({"policy", "grid span", "vs serial %", "mean wait",
                     "mean makespan", "mean stretch", "lease changes"});
  for (const service::QueuePolicy policy :
       {service::QueuePolicy::kFifo, service::QueuePolicy::kWeightedFairShare,
        service::QueuePolicy::kShortestRemaining}) {
    ServiceOptions options;
    options.policy = policy;
    options.max_active = 2;  // tight enough that admission order matters
    const auto svc = run_all(options);

    Seconds wait = 0, makespan = 0;
    double stretch = 0;
    const auto ids = svc->campaign_ids();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const service::CampaignState& state = svc->campaign(ids[i]);
      wait += state.admit_time - state.submit_time;
      makespan += state.makespan();
      stretch += state.makespan() / alone[i];
    }
    const auto n = static_cast<double>(ids.size());
    table.add_row({to_string(policy), fmt_duration(svc->now()),
                   fmt(bench::gain_percent(alone_serial, svc->now()), 1),
                   fmt_duration(wait / n), fmt_duration(makespan / n),
                   fmt(stretch / n, 2), std::to_string(svc->lease_changes())});
  }
  table.print(std::cout);
  std::cout << "\nReading: sharing the grid beats serial dedicated "
               "reservations on total span; fair share trades a little of "
               "the heavy owners' stretch for shorter waits of the light "
               "ones, srmf minimizes mean makespan.\n\n";

  // --- the price of durability: journal, snapshots, verified replay -------
  obs::set_enabled(true);
  obs::reset();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "oagrid_bench_service")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ServiceOptions durable;
  durable.policy = service::QueuePolicy::kWeightedFairShare;
  durable.max_active = 2;
  durable.journal_dir = dir;
  durable.snapshot_every = 64;
  const auto svc = run_all(durable);
  const auto journal_bytes =
      std::filesystem::file_size(CampaignService::journal_path(dir));

  CampaignService recovered(bench_grid(), durable);
  const service::RecoveryReport report = recovered.recover();

  TableWriter durability({"quantity", "value"});
  durability.add_row({"journal records", std::to_string(svc->journal_seq())});
  durability.add_row(
      {"journal bytes (after compaction)", std::to_string(journal_bytes)});
  durability.add_row(
      {"records replayed on recovery", std::to_string(report.replayed_records)});
  durability.add_row({"snapshot used",
                      report.snapshot_used
                          ? "yes (seq " + std::to_string(report.snapshot_seq) + ")"
                          : "no"});
  durability.print(std::cout);

  std::cout << "\n== service metrics (shared fair-share run + recovery) ==\n";
  obs::write_metrics_table(std::cout, obs::metrics());
  std::filesystem::remove_all(dir);
  obs::set_enabled(false);
  std::cout << "\n";
}

void BM_ServiceSharedRun(benchmark::State& state) {
  // One full multi-tenant service lifetime: admission, elastic leases,
  // placement decisions, and the simulated executions.
  ServiceOptions options;
  options.policy = service::QueuePolicy::kWeightedFairShare;
  options.max_active = 2;
  std::int64_t lease_changes = 0;
  for (auto _ : state) {
    const auto svc = run_all(options);
    lease_changes = static_cast<std::int64_t>(svc->lease_changes());
    benchmark::DoNotOptimize(svc->now());
  }
  state.counters["lease_changes"] = static_cast<double>(lease_changes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tenants().size()));
}
BENCHMARK(BM_ServiceSharedRun);

void BM_ServiceRecovery(benchmark::State& state) {
  // Verified journal replay: what a crashed service pays to come back.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "oagrid_bench_service_replay")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ServiceOptions durable;
  durable.policy = service::QueuePolicy::kWeightedFairShare;
  durable.max_active = 2;
  durable.journal_dir = dir;
  (void)run_all(durable);

  std::int64_t replayed = 0;
  for (auto _ : state) {
    CampaignService recovered(bench_grid(), durable);
    const service::RecoveryReport report = recovered.recover();
    replayed = static_cast<std::int64_t>(report.replayed_records);
    benchmark::DoNotOptimize(report.resume_time);
  }
  state.counters["replayed_records"] = static_cast<double>(replayed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          replayed);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ServiceRecovery);

void BM_ServiceHighTenancy(benchmark::State& state) {
  // Control-plane throughput at production tenancy: 5000 small campaigns
  // from 16 owners funnel through admission, the lease planner and the
  // dispatcher. No journal directory — this prices the in-memory decision
  // loop (the journal's batched cost is measured by BM_ServiceSharedRun and
  // the durability tables).
  constexpr std::size_t kCampaigns = 5000;
  constexpr std::size_t kOwners = 16;
  std::vector<Tenant> load;
  load.reserve(kCampaigns);
  for (std::size_t i = 0; i < kCampaigns; ++i) {
    Tenant t;
    t.spec.owner = "tenant-" + std::to_string(i % kOwners);
    t.spec.weight = 1.0 + static_cast<double>(i % 3);
    t.spec.scenarios = 1 + static_cast<Count>(i % 2);
    t.spec.months = 1 + static_cast<Count>(i % 2) * 2;
    t.at = static_cast<Seconds>(i) * 30.0;
    load.push_back(std::move(t));
  }

  ServiceOptions options;
  options.policy = service::QueuePolicy::kWeightedFairShare;
  options.max_active = 16;
  options.queue_capacity = kCampaigns + 1;
  std::int64_t months = 0;
  for (auto _ : state) {
    CampaignService svc(bench_grid(), options);
    for (const Tenant& t : load) (void)svc.submit(t.spec, t.at);
    if (!svc.run()) throw std::runtime_error("bench service was killed?");
    std::int64_t done = 0;
    for (const service::CampaignId id : svc.campaign_ids())
      done += static_cast<std::int64_t>(svc.campaign(id).months_done);
    months = done;
    benchmark::DoNotOptimize(svc.now());
  }
  state.counters["months"] = static_cast<double>(months);
  state.counters["campaigns_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kCampaigns),
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCampaigns));
}
BENCHMARK(BM_ServiceHighTenancy)->Unit(benchmark::kMillisecond);

void BM_FailureAwareEstimation(benchmark::State& state) {
  // The FailureAwareEstimator decorator on the analytic backend: the
  // per-admission cost of folding failure expectations into lease sizing.
  const platform::Grid grid = bench_grid();
  service::AnalyticEstimator analytic;
  service::FailureAwareEstimator estimator(
      analytic, grid,
      fault::FailureModel::uniform_exponential(grid.cluster_count(), 40000.0,
                                               2000.0),
      3);
  for (auto _ : state)
    for (ClusterId c = 0; c < grid.cluster_count(); ++c)
      benchmark::DoNotOptimize(
          estimator.vector(grid.cluster(c), 10, 24, sched::Heuristic::kKnapsack));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          grid.cluster_count());
}
BENCHMARK(BM_FailureAwareEstimation);

}  // namespace

int main(int argc, char** argv) {
  const std::string json = oagrid::bench::extract_bench_json(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  print_tables();
  oagrid::bench::run_benchmarks(json);
  benchmark::Shutdown();
  return 0;
}
