/// \file bench_alg1_repartition.cpp
/// \brief Evaluates Algorithm 1 (greedy DAG repartition) against the
/// exhaustive optimum: solution quality on real performance vectors (always
/// optimal, as the monotonicity argument predicts) and wall-clock cost of
/// both, demonstrating why the paper calls the greedy "realistic".

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sim/perf_vector.hpp"

int main() {
  using namespace oagrid;
  bench::banner("Algorithm 1 (DAGs repartition on several clusters)",
                "Greedy vs exhaustive optimum: quality and cost");

  const Count ns = 10;
  const Count nm = 24;

  TableWriter table({"platform", "clusters", "greedy makespan", "optimal",
                     "greedy optimal?", "greedy [us]", "brute force [us]"});

  auto run_case = [&](const std::string& name,
                      const std::vector<sched::PerformanceVector>& perf) {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const auto greedy = sched::greedy_repartition(perf, ns);
    const auto t1 = clock::now();
    const auto best = sched::brute_force_repartition(perf, ns);
    const auto t2 = clock::now();
    const auto us = [](auto d) {
      return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
    };
    table.add_row({name, std::to_string(perf.size()), fmt(greedy.makespan, 0),
                   fmt(best.makespan, 0),
                   std::abs(greedy.makespan - best.makespan) < 1e-6 ? "yes"
                                                                    : "NO",
                   std::to_string(us(t1 - t0)), std::to_string(us(t2 - t1))});
  };

  // Built-in heterogeneous grids at several sizes.
  for (const ProcCount r : {15, 25, 40, 60}) {
    for (int n = 2; n <= 5; ++n) {
      const auto grid = platform::make_builtin_grid(r).prefix(n);
      std::vector<sched::PerformanceVector> perf;
      for (const auto& cluster : grid.clusters())
        perf.push_back(sim::performance_vector(cluster, ns, nm,
                                               sched::Heuristic::kKnapsack));
      run_case("builtin R=" + std::to_string(r), perf);
    }
  }

  // Random heterogeneous grids.
  Rng rng(314);
  for (int trial = 0; trial < 4; ++trial) {
    const auto grid = platform::make_random_grid(4, 12, 80, rng);
    std::vector<sched::PerformanceVector> perf;
    for (const auto& cluster : grid.clusters())
      perf.push_back(sim::performance_vector(cluster, ns, nm,
                                             sched::Heuristic::kKnapsack));
    run_case("random #" + std::to_string(trial), perf);
  }

  table.print(std::cout);
  std::cout << "\nGreedy is optimal on every monotone vector set (the shape "
               "simulation produces), at a fraction of the enumeration cost.\n";
  return 0;
}
