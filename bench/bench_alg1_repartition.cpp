/// \file bench_alg1_repartition.cpp
/// \brief Microbenchmarks of Algorithm 1 (greedy DAG repartition over
/// heterogeneous clusters) on synthetic monotone performance vectors — the
/// shape real simulations produce. Google-benchmark binary with --bench-json
/// support.
///
/// The greedy series measures the heap-driven O(NS log C) placement loop
/// (historically an O(NS * C) rescan of every cluster per scenario); the
/// charged series adds a per-placement network/failure charge; the brute
/// force series keeps the exhaustive oracle honest at a size where its
/// exponential enumeration is still affordable.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sched/repartition.hpp"

namespace {

using namespace oagrid;

/// Random strictly-monotone vectors: cluster c runs k scenarios in an
/// increasing time, like every simulated performance vector.
std::vector<sched::PerformanceVector> monotone_vectors(int clusters, Count ns,
                                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<sched::PerformanceVector> perf(
      static_cast<std::size_t>(clusters));
  for (auto& vec : perf) {
    Seconds t = rng.uniform(100.0, 2000.0);
    vec.reserve(static_cast<std::size_t>(ns));
    for (Count k = 0; k < ns; ++k) {
      vec.push_back(t);
      t += rng.uniform(10.0, 500.0);
    }
  }
  return perf;
}

/// Args: {clusters, scenarios}.
void BM_GreedyRepartition(benchmark::State& state) {
  const auto perf = monotone_vectors(static_cast<int>(state.range(0)),
                                     state.range(1), 314);
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::greedy_repartition(perf, state.range(1)));
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_GreedyRepartition)
    ->Args({4, 200})
    ->Args({32, 2000})
    ->Args({256, 10000});

/// Same loop with a placement charge folded into every candidate (the
/// network-aware scheduler's path).
void BM_GreedyRepartitionCharged(benchmark::State& state) {
  const auto perf = monotone_vectors(static_cast<int>(state.range(0)),
                                     state.range(1), 159);
  const sched::PlacementCharge charge = [](std::size_t cluster, Count k) {
    return 0.25 * static_cast<double>(cluster + 1) * static_cast<double>(k);
  };
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::greedy_repartition_charged(perf, state.range(1), charge));
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_GreedyRepartitionCharged)->Args({32, 2000})->Args({256, 10000});

/// The exhaustive oracle at a small size (compositions of NS into C parts),
/// for scale against the greedy above.
void BM_BruteForceRepartition(benchmark::State& state) {
  const auto perf = monotone_vectors(static_cast<int>(state.range(0)),
                                     state.range(1), 265);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::brute_force_repartition(perf, state.range(1)));
}
BENCHMARK(BM_BruteForceRepartition)->Args({4, 12});

}  // namespace

int main(int argc, char** argv) {
  const std::string json = oagrid::bench::extract_bench_json(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  oagrid::bench::run_benchmarks(json);
  benchmark::Shutdown();
  return 0;
}
