/// \file bench_perfvector.cpp
/// \brief Planning-path benchmark for step 2 of Figure 9: building the
/// per-cluster performance vector ("the time needed to execute from 1 to NS
/// simulations"). Google-benchmark binary with --bench-json support.
///
/// The cold-cache series is the acceptance gauge of the single-pass knapsack
/// family solve: historically every k = 1..NS entry re-ran the §4.2 bounded
/// knapsack DP from scratch before its (cached) DES evaluation, so the
/// planning cost grew as NS independent DP solves per cluster. The family
/// solve extracts all NS groupings from one DP sweep, leaving the DES
/// evaluations as the only per-k work. The analytic series measures
/// sched::throughput_performance_vector, which collapses the same way.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sched/throughput.hpp"
#include "sim/eval_cache.hpp"
#include "sim/perf_vector.hpp"

namespace {

using namespace oagrid;

/// Args: {R, NS, NM}. Cold cache: every iteration drops the process-global
/// eval cache, so each DES entry is simulated (not looked up) and the DP
/// share of the cost is not hidden behind warm hits. The NS=200 case runs a
/// short campaign (NM=1) on purpose: the DES share of a cold build is
/// irreducible per-k work, and keeping it small makes this series a gauge of
/// the planning cost proper.
void BM_PerfVectorColdCache(benchmark::State& state) {
  const auto cluster = platform::make_builtin_cluster(
      1, static_cast<ProcCount>(state.range(0)));
  const Count ns = state.range(1);
  const Count months = state.range(2);
  for (auto _ : state) {
    state.PauseTiming();
    sim::eval_cache().clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        sim::performance_vector(cluster, ns, months, sched::Heuristic::kKnapsack));
  }
  state.SetItemsProcessed(state.iterations() * ns);
}
BENCHMARK(BM_PerfVectorColdCache)
    ->Args({53, 10, 60})
    ->Args({120, 40, 24})
    ->Args({1024, 200, 1})
    ->Unit(benchmark::kMillisecond);

/// Warm cache: the DES entries are pure lookups, so this isolates the
/// per-call planning overhead (schedule construction per k).
void BM_PerfVectorWarmCache(benchmark::State& state) {
  const auto cluster = platform::make_builtin_cluster(
      1, static_cast<ProcCount>(state.range(0)));
  const Count ns = state.range(1);
  const Count months = state.range(2);
  benchmark::DoNotOptimize(
      sim::performance_vector(cluster, ns, months, sched::Heuristic::kKnapsack));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::performance_vector(cluster, ns, months, sched::Heuristic::kKnapsack));
  state.SetItemsProcessed(state.iterations() * ns);
}
BENCHMARK(BM_PerfVectorWarmCache)
    ->Args({120, 40, 24})
    ->Args({1024, 200, 1})
    ->Unit(benchmark::kMillisecond);

/// The analytic §5 vector (knapsack-optimal steady-state throughput per k) —
/// the AnalyticEstimator's hot path in the service control plane.
void BM_AnalyticPerfVector(benchmark::State& state) {
  const auto cluster = platform::make_builtin_cluster(
      1, static_cast<ProcCount>(state.range(0)));
  const Count ns = state.range(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::throughput_performance_vector(cluster, ns, 12));
  state.SetItemsProcessed(state.iterations() * ns);
}
BENCHMARK(BM_AnalyticPerfVector)
    ->Args({53, 10})
    ->Args({120, 40})
    ->Args({512, 200})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json = oagrid::bench::extract_bench_json(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  oagrid::bench::run_benchmarks(json);
  benchmark::Shutdown();
  return 0;
}
