/// \file bench_perfvector.cpp
/// \brief Step 2 of Figure 9 costs one simulation per (cluster, k); the
/// analytic throughput estimate costs one knapsack DP. This bench measures
/// the accuracy the cheap estimate trades for its speed and whether the
/// final repartition survives the substitution.

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "platform/profiles.hpp"
#include "sched/throughput.hpp"
#include "sim/grid_sim.hpp"
#include "sim/perf_vector.hpp"

int main() {
  using namespace oagrid;
  bench::banner("Performance-vector estimation (extension)",
                "Simulated vs analytic §5 performance vectors: error and cost");

  const Count ns = 10, months = 60;
  using clock = std::chrono::steady_clock;

  TableWriter table({"cluster", "R", "max |err| %", "mean |err| %",
                     "simulated [ms]", "analytic [ms]"});
  for (int profile = 0; profile < 5; ++profile) {
    for (const ProcCount r : {20, 40, 80}) {
      const auto cluster = platform::make_builtin_cluster(profile, r);

      const auto t0 = clock::now();
      const auto simulated = sim::performance_vector(
          cluster, ns, months, sched::Heuristic::kKnapsack);
      const auto t1 = clock::now();
      const auto analytic =
          sched::throughput_performance_vector(cluster, ns, months);
      const auto t2 = clock::now();

      RunningStats err;
      for (std::size_t k = 0; k < simulated.size(); ++k)
        err.add(100.0 * std::abs(analytic[k] - simulated[k]) / simulated[k]);

      auto ms = [](auto d) {
        return std::chrono::duration<double, std::milli>(d).count();
      };
      table.add_row({cluster.name(), std::to_string(r), fmt(err.max(), 2),
                     fmt(err.mean(), 2), fmt(ms(t1 - t0), 2),
                     fmt(ms(t2 - t1), 2)});
    }
  }
  table.print(std::cout);

  // Does the repartition survive the substitution?
  std::cout << "\nRepartition fidelity (analytic vectors driving Algorithm 1, "
               "costed against simulated truth):\n";
  TableWriter fidelity({"clusters x R", "simulated-choice makespan",
                        "analytic-choice makespan", "regret %"});
  for (const ProcCount r : {15, 25, 40, 60}) {
    for (int n = 2; n <= 5; ++n) {
      const auto grid = platform::make_builtin_grid(r).prefix(n);
      std::vector<sched::PerformanceVector> truth, cheap;
      for (const auto& cluster : grid.clusters()) {
        truth.push_back(sim::performance_vector(cluster, ns, months,
                                                sched::Heuristic::kKnapsack));
        cheap.push_back(
            sched::throughput_performance_vector(cluster, ns, months));
      }
      const auto best = sched::greedy_repartition(truth, ns);
      const auto approx = sched::greedy_repartition(cheap, ns);
      const Seconds approx_cost =
          sched::repartition_makespan(truth, approx.dags_per_cluster);
      fidelity.add_row(
          {std::to_string(n) + " x " + std::to_string(r),
           fmt(best.makespan, 0), fmt(approx_cost, 0),
           fmt(100.0 * (approx_cost - best.makespan) / best.makespan, 2)});
    }
  }
  fidelity.print(std::cout);
  return 0;
}
